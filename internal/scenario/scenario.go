// Package scenario loads and executes user-described simulation scenarios
// from JSON — the engine behind cmd/rtvirt-sim.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"rtvirt/internal/core"
	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
	"rtvirt/internal/workload"
)

// Scenario is the JSON schema rtvirt-sim executes.
type Scenario struct {
	// Stack: rtvirt | rt-xen | two-level-edf | credit (default rtvirt).
	Stack string `json:"stack"`
	// PCPUs is the host size (default 1).
	PCPUs int `json:"pcpus"`
	// Seconds is the simulated run length (default 10).
	Seconds int64 `json:"seconds"`
	// Seed fixes the random streams (default 1).
	Seed uint64 `json:"seed"`
	// Costs overrides pieces of the platform cost model; omitted fields
	// keep the §4 defaults (hv.DefaultCosts).
	Costs *CostsSpec `json:"costs"`
	VMs   []VM       `json:"vms"`
}

// CostsSpec overrides the platform cost model per cause. Only the fields
// present in the JSON are applied; absent fields keep the defaults
// (10µs hypercall, 2µs context switch, 3µs migration — §4.5). Each term is
// a CostSpec: a bare number (constant µs) or a distribution object.
//
// The generic fields fan out: context_switch sets both the warm and cold
// switch terms, hypercall sets all three hypercall flags. Giving a generic
// field together with one of its specific counterparts is rejected, as is
// mixing a legacy *_us field with its replacement.
type CostsSpec struct {
	// Legacy scalar overrides (µs). Deprecated in favour of the CostSpec
	// fields below, kept so existing scenario JSON parses unchanged.
	ContextSwitchUS *float64 `json:"context_switch_us,omitempty"`
	MigrationUS     *float64 `json:"migration_us,omitempty"`
	HypercallUS     *float64 `json:"hypercall_us,omitempty"`

	// Per-cause terms. ContextSwitch/Hypercall are the generic forms.
	ContextSwitch     *CostSpec `json:"context_switch,omitempty"`
	CtxSwitchWarm     *CostSpec `json:"ctx_switch_warm,omitempty"`
	CtxSwitchCold     *CostSpec `json:"ctx_switch_cold,omitempty"`
	Hypercall         *CostSpec `json:"hypercall,omitempty"`
	HypercallIncBW    *CostSpec `json:"hypercall_inc_bw,omitempty"`
	HypercallDecBW    *CostSpec `json:"hypercall_dec_bw,omitempty"`
	HypercallIncDecBW *CostSpec `json:"hypercall_inc_dec_bw,omitempty"`
	Migration         *CostSpec `json:"migration,omitempty"`
	MigrationPerMiB   *CostSpec `json:"migration_per_mib,omitempty"`
	ScheduleBase      *CostSpec `json:"schedule_base,omitempty"`
	SchedulePerEntity *CostSpec `json:"schedule_per_entity,omitempty"`
	GuestSwitch       *CostSpec `json:"guest_switch,omitempty"`
	// Tick is the periodic accounting-tick cost charged by tick-driven
	// schedulers (Credit); it replaces credit.Config.TickCost.
	Tick *CostSpec `json:"tick,omitempty"`

	// NetworkDelayUS overrides the client→server network delay applied to
	// sporadic request streams (default 19µs, the paper's measured p99.9).
	// Unlike the other costs it must be strictly positive: it doubles as
	// the conservative-PDES lookahead bound in sharded cluster runs, and a
	// zero lookahead admits no parallel window at all.
	NetworkDelayUS *float64 `json:"network_delay_us,omitempty"`
}

// specs names every CostSpec field for validation and application.
func (c *CostsSpec) specs() []struct {
	name string
	spec *CostSpec
} {
	return []struct {
		name string
		spec *CostSpec
	}{
		{"context_switch", c.ContextSwitch},
		{"ctx_switch_warm", c.CtxSwitchWarm},
		{"ctx_switch_cold", c.CtxSwitchCold},
		{"hypercall", c.Hypercall},
		{"hypercall_inc_bw", c.HypercallIncBW},
		{"hypercall_dec_bw", c.HypercallDecBW},
		{"hypercall_inc_dec_bw", c.HypercallIncDecBW},
		{"migration", c.Migration},
		{"migration_per_mib", c.MigrationPerMiB},
		{"schedule_base", c.ScheduleBase},
		{"schedule_per_entity", c.SchedulePerEntity},
		{"guest_switch", c.GuestSwitch},
		{"tick", c.Tick},
	}
}

// validate checks each given term and rejects contradictory combinations.
func (c *CostsSpec) validate() error {
	for _, f := range c.specs() {
		if f.spec == nil {
			continue
		}
		if err := f.spec.validate(f.name); err != nil {
			return err
		}
	}
	type conflict struct{ a, b string }
	pairs := []struct {
		gotA, gotB bool
		conflict
	}{
		{c.ContextSwitch != nil, c.CtxSwitchWarm != nil, conflict{"context_switch", "ctx_switch_warm"}},
		{c.ContextSwitch != nil, c.CtxSwitchCold != nil, conflict{"context_switch", "ctx_switch_cold"}},
		{c.Hypercall != nil, c.HypercallIncBW != nil, conflict{"hypercall", "hypercall_inc_bw"}},
		{c.Hypercall != nil, c.HypercallDecBW != nil, conflict{"hypercall", "hypercall_dec_bw"}},
		{c.Hypercall != nil, c.HypercallIncDecBW != nil, conflict{"hypercall", "hypercall_inc_dec_bw"}},
		{c.ContextSwitchUS != nil, c.ContextSwitch != nil, conflict{"context_switch_us", "context_switch"}},
		{c.ContextSwitchUS != nil, c.CtxSwitchWarm != nil, conflict{"context_switch_us", "ctx_switch_warm"}},
		{c.ContextSwitchUS != nil, c.CtxSwitchCold != nil, conflict{"context_switch_us", "ctx_switch_cold"}},
		{c.MigrationUS != nil, c.Migration != nil, conflict{"migration_us", "migration"}},
		{c.HypercallUS != nil, c.Hypercall != nil, conflict{"hypercall_us", "hypercall"}},
		{c.HypercallUS != nil, c.HypercallIncBW != nil, conflict{"hypercall_us", "hypercall_inc_bw"}},
		{c.HypercallUS != nil, c.HypercallDecBW != nil, conflict{"hypercall_us", "hypercall_dec_bw"}},
		{c.HypercallUS != nil, c.HypercallIncDecBW != nil, conflict{"hypercall_us", "hypercall_inc_dec_bw"}},
	}
	for _, p := range pairs {
		if p.gotA && p.gotB {
			return fmt.Errorf("scenario: costs.%s and costs.%s are mutually exclusive", p.a, p.b)
		}
	}
	return nil
}

// CostModel returns hv.DefaultCosts with the overrides applied. It exists
// for builders that assemble system configs themselves instead of going
// through Build (the sharded-cluster quick harness); a nil receiver
// returns the plain defaults.
func (c *CostsSpec) CostModel() hv.CostModel {
	m := hv.DefaultCosts()
	if c != nil {
		c.apply(&m)
	}
	return m
}

// apply folds the overrides into a cost model.
func (c *CostsSpec) apply(m *hv.CostModel) {
	if c.ContextSwitchUS != nil {
		m.SetContextSwitch(hv.ConstCost(usToDur(*c.ContextSwitchUS)))
	}
	if c.MigrationUS != nil {
		m.Migration = hv.ConstCost(usToDur(*c.MigrationUS))
	}
	if c.HypercallUS != nil {
		m.SetHypercall(hv.ConstCost(usToDur(*c.HypercallUS)))
	}
	if c.ContextSwitch != nil {
		m.SetContextSwitch(c.ContextSwitch.toCost())
	}
	if c.CtxSwitchWarm != nil {
		m.CtxSwitchWarm = c.CtxSwitchWarm.toCost()
	}
	if c.CtxSwitchCold != nil {
		m.CtxSwitchCold = c.CtxSwitchCold.toCost()
	}
	if c.Hypercall != nil {
		m.SetHypercall(c.Hypercall.toCost())
	}
	if c.HypercallIncBW != nil {
		m.HypercallIncBW = c.HypercallIncBW.toCost()
	}
	if c.HypercallDecBW != nil {
		m.HypercallDecBW = c.HypercallDecBW.toCost()
	}
	if c.HypercallIncDecBW != nil {
		m.HypercallIncDecBW = c.HypercallIncDecBW.toCost()
	}
	if c.Migration != nil {
		m.Migration = c.Migration.toCost()
	}
	if c.MigrationPerMiB != nil {
		m.MigrationPerMiB = c.MigrationPerMiB.toCost()
	}
	if c.ScheduleBase != nil {
		m.ScheduleBase = c.ScheduleBase.toCost()
	}
	if c.SchedulePerEntity != nil {
		m.SchedulePerEntity = c.SchedulePerEntity.toCost()
	}
	if c.GuestSwitch != nil {
		m.GuestSwitch = c.GuestSwitch.toCost()
	}
	if c.Tick != nil {
		m.Tick = c.Tick.toCost()
	}
}

func usToDur(us float64) simtime.Duration {
	return simtime.Duration(us * float64(simtime.Microsecond))
}

// VM describes one guest.
type VM struct {
	Name string `json:"name"`
	// VCPUs is the virtual CPU count (default 1) when Servers is empty.
	VCPUs int `json:"vcpus"`
	// Servers gives explicit per-VCPU (budget, period) reservations — the
	// RT-Xen/two-level configuration style; under Credit they become caps.
	Servers []ServerSpec `json:"servers"`
	// Weight is the Credit share weight (default 256).
	Weight int        `json:"weight"`
	Tasks  []TaskSpec `json:"tasks"`
	// MaxVCPUs allows CPU hotplug up to this bound (0 = fixed VCPUs).
	// Ignored when Servers is given or under the Credit stack.
	MaxVCPUs int `json:"max_vcpus"`
	// SlackUS overrides the per-VCPU budget slack in µs (nil = the
	// stack default, 500µs under RTVirt). Explicit 0 disables slack.
	SlackUS *int64 `json:"slack_us"`
	// GuestSched selects the guest process scheduler: "pedf" (default)
	// or "gedf" (§6's global-EDF alternative).
	GuestSched string `json:"guest_sched"`
	// PrioritySlack scales each VCPU's slack by (1 + highest task
	// priority) — §6's priority-proportional provisioning.
	PrioritySlack bool `json:"priority_slack"`
	// WorkingSetMiB declares the VM's working-set size, which scales
	// cross-PCPU migration cost via the model's migration_per_mib term
	// (0 = migrations cost only the fixed term).
	WorkingSetMiB int `json:"working_set_mib"`
}

// ServerSpec is an explicit (budget, period) VCPU reservation.
type ServerSpec struct {
	BudgetUS int64 `json:"budget_us"`
	PeriodUS int64 `json:"period_us"`
}

// TaskSpec describes one application.
type TaskSpec struct {
	Name string `json:"name"`
	// Kind: periodic (default) | sporadic | background | evader.
	Kind     string `json:"kind"`
	SliceUS  int64  `json:"slice_us"`
	PeriodUS int64  `json:"period_us"`
	// PhaseMS delays the first periodic release.
	PhaseMS int64 `json:"phase_ms"`
	// RateHz drives sporadic arrivals (default 10).
	RateHz float64 `json:"rate_hz"`
	// Priority expresses relative importance (0 = normal); with the VM's
	// priority_slack it buys proportionally more budget headroom.
	Priority int `json:"priority"`
	// Arrivals replaces a sporadic task's closed-form client with an
	// open-loop production-traffic stream (diurnal/MMPP/flash-crowd).
	Arrivals *ArrivalSpec `json:"arrivals,omitempty"`
	// Adaptive attaches a feedback controller that retunes the task's
	// slice from observed response times via INC/DEC_BW.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// Evader tunes a kind:"evader" tick-evasion attacker (optional; the
	// zero config learns the tick period).
	Evader *EvaderSpec `json:"evader,omitempty"`
}

// TaskResult is one task's outcome.
type TaskResult struct {
	VM        string
	Name      string
	Kind      string
	Stats     task.Stats
	MissRatio float64
	// Latency holds response times for sporadic tasks.
	Latency *metrics.LatencyRecorder
}

// Result is a completed scenario run.
type Result struct {
	Stack       core.Stack
	PCPUs       int
	Seconds     int64
	AllocatedBW float64
	Tasks       []TaskResult
	Overhead    core.OverheadReport
	// Trace holds the schedule trace when requested.
	Trace *trace.Recorder
	// Events tallies every telemetry event by kind when any tracing was
	// on (Options.Trace, Counts, or Sinks). Per-run Counts merge
	// deterministically across the parallel runner.
	Events trace.Counts
}

// Parse decodes a scenario from JSON.
func Parse(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// StackFor resolves a stack name.
func StackFor(name string) (core.Stack, error) {
	switch name {
	case "", "rtvirt":
		return core.RTVirt, nil
	case "rt-xen", "rtxen":
		return core.RTXen, nil
	case "two-level-edf", "edf":
		return core.TwoLevelEDF, nil
	case "credit":
		return core.Credit, nil
	default:
		return 0, fmt.Errorf("scenario: unknown stack %q", name)
	}
}

// Validate performs structural checks beyond JSON decoding.
func (sc Scenario) Validate() error {
	if _, err := StackFor(sc.Stack); err != nil {
		return err
	}
	if len(sc.VMs) == 0 {
		return fmt.Errorf("scenario: no VMs")
	}
	if sc.Costs != nil {
		for _, f := range []struct {
			name  string
			value *float64
		}{
			{"context_switch_us", sc.Costs.ContextSwitchUS},
			{"migration_us", sc.Costs.MigrationUS},
			{"hypercall_us", sc.Costs.HypercallUS},
		} {
			if f.value == nil {
				continue
			}
			if *f.value < 0 || math.IsNaN(*f.value) || math.IsInf(*f.value, 0) {
				return fmt.Errorf("scenario: costs.%s invalid (%v)", f.name, *f.value)
			}
		}
		if err := sc.Costs.validate(); err != nil {
			return err
		}
		if d := sc.Costs.NetworkDelayUS; d != nil {
			if *d <= 0 || math.IsNaN(*d) || math.IsInf(*d, 0) {
				return fmt.Errorf("scenario: costs.network_delay_us must be positive (it is the PDES lookahead bound), got %v", *d)
			}
		}
	}
	for _, vm := range sc.VMs {
		if vm.Name == "" {
			return fmt.Errorf("scenario: VM without a name")
		}
		switch vm.GuestSched {
		case "", "pedf", "gedf":
		default:
			return fmt.Errorf("scenario: VM %q has unknown guest_sched %q", vm.Name, vm.GuestSched)
		}
		if vm.SlackUS != nil && *vm.SlackUS < 0 {
			return fmt.Errorf("scenario: VM %q has negative slack_us", vm.Name)
		}
		if vm.WorkingSetMiB < 0 {
			return fmt.Errorf("scenario: VM %q has negative working_set_mib", vm.Name)
		}
		if vm.MaxVCPUs != 0 && vm.MaxVCPUs < vm.VCPUs {
			return fmt.Errorf("scenario: VM %q max_vcpus %d below vcpus %d",
				vm.Name, vm.MaxVCPUs, vm.VCPUs)
		}
		for _, ts := range vm.Tasks {
			if ts.Priority < 0 {
				return fmt.Errorf("scenario: task %q has negative priority", ts.Name)
			}
			switch ts.Kind {
			case "", "periodic", "sporadic":
				if ts.SliceUS <= 0 || ts.PeriodUS <= 0 || ts.SliceUS > ts.PeriodUS {
					return fmt.Errorf("scenario: task %q has invalid (slice=%dµs, period=%dµs)",
						ts.Name, ts.SliceUS, ts.PeriodUS)
				}
			case "background", "evader":
			default:
				return fmt.Errorf("scenario: task %q has unknown kind %q", ts.Name, ts.Kind)
			}
			if ts.Arrivals != nil {
				if ts.Kind != "sporadic" {
					return fmt.Errorf("scenario: task %q has an arrivals block but kind %q (arrivals drive sporadic tasks)",
						ts.Name, ts.Kind)
				}
				if err := ts.Arrivals.validate(ts.Name); err != nil {
					return err
				}
			}
			if ts.Adaptive != nil {
				if ts.Kind == "background" || ts.Kind == "evader" {
					return fmt.Errorf("scenario: task %q has an adaptive block but kind %q (controllers retune RT reservations)",
						ts.Name, ts.Kind)
				}
				if err := ts.Adaptive.validate(ts.Name); err != nil {
					return err
				}
			}
			if ts.Evader != nil {
				if ts.Kind != "evader" {
					return fmt.Errorf("scenario: task %q has an evader block but kind %q", ts.Name, ts.Kind)
				}
				if err := ts.Evader.validate(ts.Name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Options tunes Run.
type Options struct {
	// Trace records the schedule (capped at TraceMax records).
	Trace    bool
	TraceMax int
	// Counts attaches a per-kind event counter without retaining events;
	// implied by Trace or a non-empty Sinks.
	Counts bool
	// Sinks are additional telemetry consumers (e.g. a trace.JSONL
	// exporter) attached for the whole run.
	Sinks []trace.Sink
	// OnSystem, when set, runs right after the system is built and the
	// sinks are attached, before any guest exists. Invariant oracles that
	// need the live host or scheduler (internal/check) hook in here.
	OnSystem func(*core.System)
}

// bound ties a task spec to its built task, guest, and latency recorder,
// plus whichever driver (controller, evader) the spec attached.
type bound struct {
	spec   TaskSpec
	vm     string
	task   *task.Task
	guest  *guest.OS
	lat    *metrics.LatencyRecorder
	ctrl   *guest.AdaptiveController
	evader *workload.TickEvader
}

// World is a built-but-not-started scenario: the system is constructed,
// telemetry sinks are attached, and every guest and task is registered,
// but the host has not started and no workload has been released. Callers
// that need to drive the simulation themselves (forking mid-run, pausing
// at checkpoints) use Build/Start/Finish; Run wraps the whole lifecycle.
type World struct {
	Sys     *core.System
	Stack   core.Stack
	Seconds int64

	all      []bound
	rec      *trace.Recorder
	counts   *trace.Counts
	netDelay simtime.Duration
}

// NetworkDelay reports the client→server delay sporadic streams run with
// (the costs.network_delay_us override, or the workload default). Sharded
// runs built from the same scenario use it as their lookahead bound.
func (w *World) NetworkDelay() simtime.Duration { return w.netDelay }

// Controllers returns the adaptive controllers the scenario attached, in
// task declaration order.
func (w *World) Controllers() []*guest.AdaptiveController {
	var cs []*guest.AdaptiveController
	for i := range w.all {
		if w.all[i].ctrl != nil {
			cs = append(cs, w.all[i].ctrl)
		}
	}
	return cs
}

// Evaders returns the tick-evasion attackers the scenario attached, in
// task declaration order.
func (w *World) Evaders() []*workload.TickEvader {
	var es []*workload.TickEvader
	for i := range w.all {
		if w.all[i].evader != nil {
			es = append(es, w.all[i].evader)
		}
	}
	return es
}

// Run executes the scenario and returns its results.
func Run(sc Scenario, opts Options) (*Result, error) {
	w, err := Build(sc, opts)
	if err != nil {
		return nil, err
	}
	w.Start()
	w.Sys.Run(simtime.Duration(w.Seconds) * simtime.Second)
	return w.Finish(), nil
}

// Build validates the scenario and constructs its world without starting
// the host or releasing any workload.
func Build(sc Scenario, opts Options) (*World, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	stack, _ := StackFor(sc.Stack)
	cfg := core.DefaultConfig(stack)
	if sc.PCPUs > 0 {
		cfg.PCPUs = sc.PCPUs
	} else {
		cfg.PCPUs = 1
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.Costs != nil {
		sc.Costs.apply(&cfg.Costs)
	}
	sys := core.NewSystem(cfg)

	// Attach sinks before building the guests so admission events from
	// VCPU creation are observed too.
	var rec *trace.Recorder
	if opts.Trace {
		max := opts.TraceMax
		if max == 0 {
			max = 1 << 20
		}
		rec = &trace.Recorder{Max: max}
		sys.Host.TraceTo(rec)
	}
	sys.Host.TraceTo(opts.Sinks...)
	var counts *trace.Counts
	if opts.Trace || opts.Counts || len(opts.Sinks) > 0 {
		counts = &trace.Counts{}
		sys.Host.TraceTo(counts)
	}
	if opts.OnSystem != nil {
		opts.OnSystem(sys)
	}

	var all []bound
	id := 0
	for _, vmSpec := range sc.VMs {
		g, err := makeGuest(sys, stack, vmSpec)
		if err != nil {
			return nil, fmt.Errorf("scenario: vm %q: %w", vmSpec.Name, err)
		}
		g.VM().WorkingSetMiB = vmSpec.WorkingSetMiB
		for _, ts := range vmSpec.Tasks {
			tk, err := makeTask(g, id, ts)
			if err != nil {
				return nil, fmt.Errorf("scenario: vm %q task %q: %w", vmSpec.Name, ts.Name, err)
			}
			id++
			b := bound{spec: ts, vm: vmSpec.Name, task: tk, guest: g}
			if ts.Kind == "evader" {
				ev, err := workload.NewTickEvaderFor(g, tk, ts.Evader.evaderConfig())
				if err != nil {
					return nil, fmt.Errorf("scenario: vm %q task %q: %w", vmSpec.Name, ts.Name, err)
				}
				b.evader = ev
			}
			if ts.Adaptive != nil {
				ctrl, err := guest.NewAdaptiveController(g, tk, ts.Adaptive.adaptiveConfig())
				if err != nil {
					return nil, fmt.Errorf("scenario: vm %q task %q: %w", vmSpec.Name, ts.Name, err)
				}
				b.ctrl = ctrl
			}
			all = append(all, b)
		}
	}

	seconds := sc.Seconds
	if seconds <= 0 {
		seconds = 10
	}
	netDelay := workload.DefaultNetworkDelay()
	if sc.Costs != nil && sc.Costs.NetworkDelayUS != nil {
		netDelay = usToDur(*sc.Costs.NetworkDelayUS)
	}
	return &World{Sys: sys, Stack: stack, Seconds: seconds, all: all,
		rec: rec, counts: counts, netDelay: netDelay}, nil
}

// Start starts the host and releases the scenario's workload. The caller
// then drives the simulation (w.Sys.Run or finer-grained stepping) and
// collects the outcome with Finish.
func (w *World) Start() {
	w.Sys.Start()
	for i := range w.all {
		b := &w.all[i]
		switch b.spec.Kind {
		case "periodic", "":
			b.guest.StartPeriodic(b.task,
				simtime.Time(simtime.Millis(b.spec.PhaseMS)))
		case "sporadic":
			if b.spec.Arrivals != nil {
				client := workload.NewOpenLoopClientFor(b.guest, b.task,
					b.spec.Arrivals.process())
				client.NetworkDelay = w.netDelay
				b.lat = &client.Latency
				client.Start(0)
				break
			}
			rate := b.spec.RateHz
			if rate <= 0 {
				rate = 10
			}
			mean := simtime.Duration(float64(simtime.Second) / rate)
			client := workload.NewSporadicClientFor(b.guest, b.task,
				dist.Normal{MeanD: mean, Stddev: mean / 4, Min: simtime.Micros(100)},
				int(w.Seconds)*int(rate)+16)
			client.NetworkDelay = w.netDelay
			b.lat = &client.Latency
			client.Start(0)
		case "background":
			g, tk := b.guest, b.task
			w.Sys.Sim.At(0, func(now simtime.Time) {
				g.ReleaseJob(tk, simtime.Duration(1<<60))
			})
		case "evader":
			b.evader.Start(0)
		}
	}
	// Controllers start after every workload so their first window sees a
	// fully-released system; the loop order keeps starts deterministic.
	for i := range w.all {
		if w.all[i].ctrl != nil {
			w.all[i].ctrl.Start(0)
		}
	}
}

// Finish settles host accounting and assembles the run's results.
func (w *World) Finish() *Result {
	w.Sys.Host.Sync()
	res := &Result{
		Stack:       w.Stack,
		PCPUs:       w.Sys.Cfg.PCPUs,
		Seconds:     w.Seconds,
		AllocatedBW: w.Sys.AllocatedBandwidth(),
		Overhead:    w.Sys.Overhead(),
		Trace:       w.rec,
	}
	if w.counts != nil {
		res.Events = *w.counts
	}
	for _, b := range w.all {
		kind := b.spec.Kind
		if kind == "" {
			kind = "periodic"
		}
		st := b.task.Stats()
		res.Tasks = append(res.Tasks, TaskResult{
			VM:        b.vm,
			Name:      b.task.Name,
			Kind:      kind,
			Stats:     st,
			MissRatio: st.MissRatio(),
			Latency:   b.lat,
		})
	}
	return res
}

func makeGuest(sys *core.System, stack core.Stack, vm VM) (*guest.OS, error) {
	if len(vm.Servers) > 0 {
		var rsv []hv.Reservation
		for _, s := range vm.Servers {
			rsv = append(rsv, hv.Reservation{
				Budget: simtime.Micros(s.BudgetUS),
				Period: simtime.Micros(s.PeriodUS),
			})
		}
		w := vm.Weight
		if w == 0 {
			w = 256
		}
		return sys.NewServerGuest(vm.Name, rsv, w)
	}
	vcpus := vm.VCPUs
	if vcpus == 0 {
		vcpus = 1
	}
	if stack == core.Credit {
		w := vm.Weight
		if w == 0 {
			w = 256
		}
		return sys.NewWeightedGuest(vm.Name, vcpus, w)
	}
	opts := core.GuestOpts{
		VCPUs:         vcpus,
		MaxVCPUs:      vm.MaxVCPUs,
		GEDF:          vm.GuestSched == "gedf",
		PrioritySlack: vm.PrioritySlack,
	}
	if vm.SlackUS != nil {
		s := simtime.Micros(*vm.SlackUS)
		opts.Slack = &s
	}
	return sys.NewGuestOpts(vm.Name, opts)
}

func makeTask(g *guest.OS, id int, ts TaskSpec) (*task.Task, error) {
	switch ts.Kind {
	case "background", "evader":
		t := task.NewBackground(id, ts.Name)
		return t, g.Register(t)
	case "sporadic":
		t := task.New(id, ts.Name, task.Sporadic, task.Params{
			Slice:  simtime.Micros(ts.SliceUS),
			Period: simtime.Micros(ts.PeriodUS),
		})
		t.Priority = ts.Priority
		return t, g.Register(t)
	default:
		t := task.New(id, ts.Name, task.Periodic, task.Params{
			Slice:  simtime.Micros(ts.SliceUS),
			Period: simtime.Micros(ts.PeriodUS),
		})
		t.Priority = ts.Priority
		return t, g.Register(t)
	}
}

// Hierarchical timing-wheel backend (Varghese & Lauck) for Queue.
//
// The wheel quantizes time into ticks of 2^tickShift ns and keeps four
// levels of 64 slots each, so one "frame" of 64^4 ticks (~17.6 s at the
// 1.024 µs tick) is addressable. Events land in the container their firing
// time calls for:
//
//   - the *run*: a small array, sorted descending by (at, seq), holding the
//     cursor tick's events (and any event scheduled at or before it). The
//     earliest event sits at the tail, so Fire is a pop and a whole batch
//     of same-instant events drains with zero per-event search — the
//     batched same-instant firing the dispatch path wants.
//   - a *level slot*: an intrusive doubly-linked chain. The level is the
//     position of the highest base-64 digit in which the event's tick
//     differs from the cursor's, so a slot index is always strictly ahead
//     of the cursor's digit at that level and lower levels stay wrap-free.
//     Insert and remove are O(1) pointer splices — a rescheduled standing
//     timer (the hv per-PCPU kernel event, RT-Xen replenishments) never
//     sifts anything.
//   - the *overflow heap*: a 4-ary min-heap on (at, seq) for events beyond
//     the cursor's frame — the same intrusive heap discipline as the
//     default backend, holding the far future at O(log n) so the wheel
//     needs no fifth level.
//
// Advancing is lazy and jump-based: when the run drains, the cursor jumps
// straight to the lowest occupied slot (found with one bitmap scan per
// level), transferring a level-0 slot into the run or cascading a
// higher-level slot's chain one level down. When the wheel is empty the
// cursor re-anchors at the overflow frontier and the overflow events of
// that frame are drained back into the wheel, so the invariant "every
// overflow event lies beyond the cursor's frame" — which keeps slot
// contents strictly earlier than overflow contents — always holds.
//
// Firing order is the exact total order on (at, seq), identical to the
// heap backend's, so a simulation is bit-identical under either backend.
// There are no tombstones: every container supports cheap eager removal.
package eventq

import (
	"fmt"
	"math/bits"

	"rtvirt/internal/clone"
	"rtvirt/internal/simtime"
)

// Backend selects the data structure behind a Queue.
type Backend uint8

const (
	// BackendHeap is the intrusive 4-ary min-heap with lazy tombstone
	// cancellation — the zero value and the default.
	BackendHeap Backend = iota
	// BackendWheel is the hierarchical timing wheel with a heap overflow.
	BackendWheel
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendHeap:
		return "heap"
	case BackendWheel:
		return "wheel"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend resolves a backend name. The empty string selects the
// default (heap); any other unknown name is an error — callers that read
// the name from an environment variable or a config file must surface it
// rather than silently falling back.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "heap":
		return BackendHeap, nil
	case "wheel":
		return BackendWheel, nil
	default:
		return BackendHeap, fmt.Errorf("eventq: unknown backend %q (want heap or wheel)", name)
	}
}

// Wheel geometry. 2^10 ns ticks keep sub-µs events (same-instant bursts,
// deferred same-tick kicks) in one run batch; 4 levels of 64 slots cover
// ~17.6 s — longer than any standing timer the kernel arms — before the
// overflow heap takes over.
const (
	tickShift   = 10 // 1.024 µs per level-0 tick
	slotBits    = 6
	wheelSlots  = 1 << slotBits
	wheelLevels = 4
	wheelBits   = slotBits * wheelLevels // ticks per frame = 1<<wheelBits
)

// Wheel container tags (Event.where).
const (
	whNone byte = iota
	whRun
	whSlot
	whOver
)

// wheel is the timing-wheel state of a Queue with BackendWheel.
type wheel struct {
	// base is the cursor tick: every resident event's tick is ≥ base.
	base int64
	// runLimit is the exclusive firing-time bound of the run: an event at
	// t < runLimit files into the run. Maintained as (base+1)<<tickShift.
	runLimit simtime.Time
	// count is the number of events resident in the level slots.
	count int
	occ   [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	slots [wheelLevels][wheelSlots]*Event
	// run holds the cursor tick's events sorted descending by (at, seq):
	// the earliest fires from the tail, so pops never shift.
	run []*Event
	// over is the overflow 4-ary min-heap of events beyond base's frame.
	over []*Event
}

// tickOf quantizes a firing time to its wheel tick.
func tickOf(t simtime.Time) int64 { return int64(t) >> tickShift }

// wheelPlace files a pending record into the container its firing time
// calls for. The record's at/seq are already set.
func (q *Queue) wheelPlace(e *Event) {
	w := q.w
	if len(w.run) == 0 && w.count == 0 && len(w.over) == 0 {
		// Empty queue: re-anchor the cursor at the new event so it needs no
		// advancing to reach it.
		w.base = tickOf(e.at)
		w.runLimit = simtime.Time(w.base+1) << tickShift
	}
	if e.at < w.runLimit {
		q.runInsert(e)
		return
	}
	diff := uint64(tickOf(e.at) ^ w.base)
	if diff == 0 {
		// Same tick as the cursor seen through a stale runLimit; only
		// reachable mid-cascade, before the transfer that refreshes it.
		q.runInsert(e)
		return
	}
	if diff>>wheelBits != 0 {
		q.overPush(e)
		return
	}
	// Highest differing base-64 digit picks the level; the event's digit
	// there is its slot. Because all higher digits equal the cursor's, the
	// slot is strictly ahead of the cursor's digit — no wrap-around.
	lvl := uint((63 - bits.LeadingZeros64(diff)) / slotBits)
	slot := int(tickOf(e.at)>>(lvl*slotBits)) & (wheelSlots - 1)
	head := w.slots[lvl][slot]
	e.prev, e.next = nil, head
	if head != nil {
		head.prev = e
	}
	w.slots[lvl][slot] = e
	w.occ[lvl] |= 1 << uint(slot)
	e.where = whSlot
	e.idx = int32(int(lvl)<<slotBits | slot)
	w.count++
}

// wheelDetach removes a pending record from whichever container holds it,
// leaving it unfiled (the caller recycles or re-places it).
func (q *Queue) wheelDetach(e *Event) {
	switch e.where {
	case whRun:
		q.runRemove(e)
	case whSlot:
		q.slotRemove(e)
	case whOver:
		q.overRemove(e)
	default:
		panic("eventq: detach of an unfiled wheel event")
	}
	e.where = whNone
	e.idx = -1
}

// runInsert binary-inserts e into the descending run. Near-future events
// land near the tail, so the common shift is short.
func (q *Queue) runInsert(e *Event) {
	w := q.w
	lo, hi := 0, len(w.run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(e, w.run[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.run = append(w.run, nil)
	copy(w.run[lo+1:], w.run[lo:])
	w.run[lo] = e
	e.where = whRun
	for i := lo; i < len(w.run); i++ {
		w.run[i].idx = int32(i)
	}
}

// runRemove deletes e from the run, closing the gap.
func (q *Queue) runRemove(e *Event) {
	w := q.w
	i := int(e.idx)
	copy(w.run[i:], w.run[i+1:])
	n := len(w.run) - 1
	w.run[n] = nil
	w.run = w.run[:n]
	for j := i; j < n; j++ {
		w.run[j].idx = int32(j)
	}
}

// slotRemove unlinks e from its slot chain — O(1), clearing the occupancy
// bit when the chain empties.
func (q *Queue) slotRemove(e *Event) {
	w := q.w
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		lvl, slot := int(e.idx)>>slotBits, int(e.idx)&(wheelSlots-1)
		w.slots[lvl][slot] = e.next
		if e.next == nil {
			w.occ[lvl] &^= 1 << uint(slot)
		}
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
	w.count--
}

// wheelFront makes the run hold the earliest pending events, advancing the
// cursor as needed. It reports false when the queue is empty.
func (q *Queue) wheelFront() bool {
	w := q.w
	for len(w.run) == 0 {
		if w.count > 0 {
			q.wheelStep()
			continue
		}
		if len(w.over) == 0 {
			return false
		}
		q.overJump()
	}
	return true
}

// wheelStep jumps the cursor to the lowest occupied slot. A level-0 slot
// (one tick) transfers into the run; a higher-level slot cascades — its
// chain is re-filed against the advanced cursor, landing at lower levels
// or, for the cursor's own tick, in the run.
func (q *Queue) wheelStep() {
	w := q.w
	for lvl := uint(0); lvl < wheelLevels; lvl++ {
		d := uint(w.base>>(lvl*slotBits)) & (wheelSlots - 1)
		mask := w.occ[lvl]
		if lvl == 0 {
			mask = mask >> d << d // at or after the cursor digit
		} else {
			// Strictly after: the cursor-digit slot was cascaded when the
			// cursor entered it.
			mask &^= (1 << (d + 1)) - 1
		}
		if mask == 0 {
			continue
		}
		slot := int64(bits.TrailingZeros64(mask))
		// Jump to the slot's first tick: install the slot as this level's
		// digit and zero every lower digit.
		span := int64(1) << (lvl * slotBits)
		w.base = w.base&^(span<<slotBits-1) | slot*span
		w.runLimit = simtime.Time(w.base+1) << tickShift
		head := w.slots[lvl][slot]
		w.slots[lvl][slot] = nil
		w.occ[lvl] &^= 1 << uint(slot)
		if lvl == 0 {
			q.transferRun(head)
			return
		}
		for e := head; e != nil; {
			next := e.next
			e.next, e.prev = nil, nil
			e.where = whNone
			w.count--
			q.wheelPlace(e)
			e = next
		}
		return
	}
	panic("eventq: wheel occupancy desynchronized")
}

// transferRun moves a level-0 slot's chain — one tick's events — into the
// empty run and sorts it descending. Chain order is unobservable: (at, seq)
// is a total order, so any comparison sort yields the same firing sequence.
func (q *Queue) transferRun(head *Event) {
	w := q.w
	for e := head; e != nil; {
		next := e.next
		e.next, e.prev = nil, nil
		e.where = whRun
		w.run = append(w.run, e)
		w.count--
		e = next
	}
	for i := 1; i < len(w.run); i++ {
		e := w.run[i]
		j := i - 1
		for j >= 0 && less(w.run[j], e) {
			w.run[j+1] = w.run[j]
			j--
		}
		w.run[j+1] = e
	}
	for i, e := range w.run {
		e.idx = int32(i)
	}
}

// overJump re-anchors the empty wheel at the overflow frontier and drains
// every overflow event of the new frame back through wheelPlace, restoring
// the invariant that the overflow holds only events beyond the cursor's
// frame.
func (q *Queue) overJump() {
	w := q.w
	tk := tickOf(w.over[0].at)
	w.base = tk
	w.runLimit = simtime.Time(tk+1) << tickShift
	frame := tk >> wheelBits
	for len(w.over) > 0 && tickOf(w.over[0].at)>>wheelBits == frame {
		e := w.over[0]
		q.overRemove(e)
		e.where = whNone
		q.wheelPlace(e)
	}
}

// wheelFire pops and runs the earliest event — the run's tail.
func (q *Queue) wheelFire() bool {
	if !q.wheelFront() {
		return false
	}
	w := q.w
	n := len(w.run) - 1
	e := w.run[n]
	w.run[n] = nil
	w.run = w.run[:n]
	q.live--
	at, fn, p := e.at, e.fn, e.p
	q.recycle(e)
	if fn != nil {
		fn(at)
	} else {
		q.Dispatch(at, p)
	}
	return true
}

// overPush inserts e into the overflow heap.
func (q *Queue) overPush(e *Event) {
	w := q.w
	w.over = append(w.over, e)
	e.where = whOver
	q.overSiftUp(len(w.over) - 1)
}

// overRemove deletes e from the overflow heap by its index.
func (q *Queue) overRemove(e *Event) {
	w := q.w
	i := int(e.idx)
	n := len(w.over) - 1
	last := w.over[n]
	w.over[n] = nil
	w.over = w.over[:n]
	if i == n {
		return
	}
	w.over[i] = last
	last.idx = int32(i)
	q.overSiftUp(i)
	if int(last.idx) == i {
		q.overSiftDown(i)
	}
}

func (q *Queue) overSiftUp(i int) {
	w := q.w
	e := w.over[i]
	for i > 0 {
		p := (i - 1) / arity
		pe := w.over[p]
		if !less(e, pe) {
			break
		}
		w.over[i] = pe
		pe.idx = int32(i)
		i = p
	}
	w.over[i] = e
	e.idx = int32(i)
}

func (q *Queue) overSiftDown(i int) {
	w := q.w
	e := w.over[i]
	n := len(w.over)
	for {
		c := arity*i + 1
		if c >= n {
			break
		}
		end := c + arity
		if end > n {
			end = n
		}
		m := c
		mc := w.over[c]
		for j := c + 1; j < end; j++ {
			if less(w.over[j], mc) {
				m, mc = j, w.over[j]
			}
		}
		if !less(mc, e) {
			break
		}
		w.over[i] = mc
		mc.idx = int32(i)
		i = m
	}
	w.over[i] = e
	e.idx = int32(i)
}

// cloneWheelInto is CloneInto for a wheel-backed queue: an exact structural
// copy — cursor, bitmaps, run order, chain order, overflow layout — so the
// fork's wheel behaves identically operation for operation. Same contract
// as the heap path: (at, seq, gen) preserved, events memoized in ctx for
// CloneHandle, error on pending closures.
func (q *Queue) cloneWheelInto(dst *Queue, ctx *clone.Ctx) error {
	w := q.w
	dst.SetBackend(BackendWheel)
	nw := dst.w
	nw.base, nw.runLimit, nw.count = w.base, w.runLimit, w.count
	nw.occ = w.occ
	closures := 0
	cl := func(e *Event) *Event {
		if e.fn != nil {
			closures++
		}
		ne := &Event{at: e.at, seq: e.seq, gen: e.gen, p: e.p,
			state: statePending, idx: e.idx, where: e.where}
		ctx.Put(e, ne)
		return ne
	}
	nw.run = make([]*Event, len(w.run))
	for i, e := range w.run {
		nw.run[i] = cl(e)
	}
	for lvl := range w.slots {
		for slot, head := range w.slots[lvl] {
			var prev *Event
			for e := head; e != nil; e = e.next {
				ne := cl(e)
				if prev == nil {
					nw.slots[lvl][slot] = ne
				} else {
					prev.next = ne
					ne.prev = prev
				}
				prev = ne
			}
		}
	}
	nw.over = make([]*Event, len(w.over))
	for i, e := range w.over {
		nw.over[i] = cl(e)
	}
	if closures > 0 {
		return fmt.Errorf("eventq: %d pending closure event(s); only typed payload events can be forked", closures)
	}
	dst.seq = q.seq
	dst.live = q.live
	return nil
}

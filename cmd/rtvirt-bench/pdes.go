package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"rtvirt/internal/cluster"
	"rtvirt/internal/dist"
	"rtvirt/internal/eventq"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// The -pdes benchmark: a memcached-style cluster — every host serves two
// cache VMs whose sporadic tasks are driven by remote clients on two
// other hosts, next to a periodic RT task and a background hog — with a
// rack-structured network: hosts come in racks of 8, and a client's
// request latency depends on how far its rack is from the cache's
// (120/180/260 µs for same/adjacent/distant racks).
//
// The sweep measures two things:
//
//   - Windows. With per-edge lookaheads (the default), every declared
//     link contributes its real latency to the conservative window
//     bounds, so windows stretch to the topology's cycle lengths instead
//     of the 19 µs global floor. One extra run with
//     ShardedConfig.GlobalWindows compares against the PR-7 protocol on
//     the identical world; BENCH_6's recorded window count is the
//     historical reference for the same hosts/VMs/seconds configuration.
//   - Determinism. Executor groups 1/2/4/8 on both event-queue backends
//     (heap and timing wheel) must produce byte-identical cluster
//     digests; the global-window run must match modulo the window count
//     in the digest header. Any divergence fails the process.
type pdesGroupRow struct {
	Backend      string  `json:"backend"`
	Groups       int     `json:"groups"`
	WallSeconds  float64 `json:"wall_seconds"`
	Speedup      float64 `json:"speedup_vs_groups1"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type pdesLinkDelays struct {
	SameRackUS     float64 `json:"same_rack_us"`
	AdjacentRackUS float64 `json:"adjacent_rack_us"`
	DistantRackUS  float64 `json:"distant_rack_us"`
}

type pdesReport struct {
	Bench             string         `json:"bench"`
	GoVersion         string         `json:"go_version"`
	Cores             int            `json:"cores"`
	Hosts             int            `json:"hosts"`
	VMs               int            `json:"vms"`
	Clients           int            `json:"clients"`
	SimulatedSeconds  int64          `json:"simulated_seconds"`
	LookaheadUS       float64        `json:"lookahead_us"`
	RackSize          int            `json:"rack_size"`
	LinkDelays        pdesLinkDelays `json:"link_delays"`
	Requests          uint64         `json:"requests"`
	Events            uint64         `json:"events"`
	WindowsPerEdge    uint64         `json:"windows_per_edge"`
	WindowsGlobal     uint64         `json:"windows_global"`
	WindowsBench6     uint64         `json:"windows_bench6_reference"`
	ReductionVsGlobal float64        `json:"window_reduction_vs_global"`
	ReductionVsBench6 float64        `json:"window_reduction_vs_bench6"`
	Migrations        int            `json:"migrations"`
	Groups            []pdesGroupRow `json:"groups_sweep"`
	DigestIdentical   bool           `json:"digest_identical"`
	Note              string         `json:"note"`
}

// bench6Windows is the window count BENCH_6.json recorded for this exact
// configuration (64 hosts, 128 VMs, 2 simulated seconds, 19 µs
// lookahead) under the PR-7 single-global-lookahead protocol.
const bench6Windows = 103404

// pdesRackSize groups hosts into racks; a client's network delay to a
// cache depends only on the rack distance.
const pdesRackSize = 8

func pdesLinkDelay(src, dst int) simtime.Duration {
	rs, rd := src/pdesRackSize, dst/pdesRackSize
	switch d := rs - rd; {
	case d == 0:
		return simtime.Micros(120)
	case d == 1 || d == -1:
		return simtime.Micros(180)
	default:
		return simtime.Micros(260)
	}
}

// buildPDESBench assembles the hosts-sized cluster. Two cache VMs per
// host, each sporadic server fed by clients one and two hosts over at
// the rack-distance link delay; eight planned migrations ripple through
// the first hosts. The world is identical under both window modes — only
// the synchronization protocol differs.
func buildPDESBench(hosts int, globalWindows bool) (*cluster.Sharded, []*cluster.RemoteClient) {
	cfg := cluster.DefaultShardedConfig()
	cfg.Hosts = hosts
	cfg.PCPUs = 4
	cfg.Seed = 1
	cfg.GlobalWindows = globalWindows
	cfg.LinkDelay = pdesLinkDelay
	c := cluster.NewSharded(cfg)
	var clients []*cluster.RemoteClient
	for h := 0; h < hosts; h++ {
		for v := 0; v < 2; v++ {
			spec := cluster.VMSpec{
				Name:  fmt.Sprintf("cache%d-%d", h, v),
				VCPUs: 2,
				Tasks: []cluster.TaskSpec{
					{Name: "memc", Kind: task.Sporadic,
						Params: task.Params{Slice: simtime.Micros(60), Period: simtime.Micros(200)}},
					{Name: "rt", Kind: task.Periodic,
						Params: task.Params{Slice: simtime.Micros(300), Period: simtime.Millis(5)},
						Phase:  simtime.Micros(int64(37 * (h + v)))},
					{Name: "bg", Kind: task.Background},
				},
			}
			d, err := c.Deploy(h, spec)
			if err != nil {
				log.Fatalf("pdes bench deploy %s: %v", spec.Name, err)
			}
			for _, src := range []int{(h + 1) % hosts, (h + 2) % hosts} {
				if src == h {
					continue // degenerate only when hosts < 3
				}
				cl, err := c.AddRemoteClient(src, d, 0, pdesLinkDelay(src, h),
					dist.Uniform{Lo: simtime.Micros(150), Hi: simtime.Micros(500)},
					dist.Uniform{Lo: simtime.Micros(20), Hi: simtime.Micros(80)}, 0)
				if err != nil {
					log.Fatalf("pdes bench client for %s: %v", spec.Name, err)
				}
				clients = append(clients, cl)
			}
		}
	}
	nmig := 8
	if nmig > hosts-1 {
		nmig = hosts - 1
	}
	for k := 0; k < nmig; k++ {
		d, _ := c.Lookup(fmt.Sprintf("cache%d-0", k))
		at := simtime.Time(0).Add(simtime.Millis(int64(100 * (k + 1))))
		if err := c.PlanMigration(at, d, (k+1)%hosts); err != nil {
			log.Fatalf("pdes bench migration %d: %v", k, err)
		}
	}
	return c, clients
}

// digestSansWindows strips the "windows=N" token from a cluster digest's
// header line. Everything observable — event counts, clocks, per-task
// statistics — must match across window protocols; only how many barrier
// rounds produced it may differ.
func digestSansWindows(d string) string {
	head, rest, _ := strings.Cut(d, "\n")
	fields := strings.Fields(head)
	kept := fields[:0]
	for _, f := range fields {
		if !strings.HasPrefix(f, "windows=") {
			kept = append(kept, f)
		}
	}
	return strings.Join(kept, " ") + "\n" + rest
}

// runPDES sweeps executor group counts and event-queue backends over the
// sharded cluster under per-edge window bounds, checks digest identity,
// runs one global-window baseline for the window-count A/B, and writes
// the report to outPath (BENCH_7.json by default).
func runPDES(outPath string, hosts int, seconds int64) {
	if hosts < 3 {
		log.Fatalf("pdes bench needs at least 3 hosts, got %d", hosts)
	}
	if seconds <= 0 {
		seconds = 2
	}
	total := simtime.Duration(seconds) * simtime.Second
	fmt.Printf("Sharded conservative-PDES sweep — %d hosts, %d simulated seconds, %d cores\n",
		hosts, seconds, runtime.NumCPU())

	r := pdesReport{
		Bench:            "sharded conservative-PDES cluster: per-edge lookahead topology sweep",
		GoVersion:        runtime.Version(),
		Cores:            runtime.NumCPU(),
		Hosts:            hosts,
		SimulatedSeconds: seconds,
		RackSize:         pdesRackSize,
		LinkDelays:       pdesLinkDelays{SameRackUS: 120, AdjacentRackUS: 180, DistantRackUS: 260},
		WindowsBench6:    bench6Windows,
		DigestIdentical:  true,
		Note: "walls measured on this machine; speedup is bounded by physical cores " +
			"(a 1-core container shows ~1x at every group count by construction — " +
			"the digest-identity column is the determinism contract, the CI smoke " +
			"re-runs the sweep on multi-core runners). windows_bench6_reference is " +
			"the PR-7 global-lookahead run on the same hosts/VMs/seconds " +
			"configuration; windows_global re-measures that protocol on this " +
			"exact world via ShardedConfig.GlobalWindows.",
	}

	prevBackend := sim.DefaultBackend
	defer func() { sim.DefaultBackend = prevBackend }()

	var baseDigest string
	for _, backend := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		sim.DefaultBackend = backend
		var baseWall float64
		for _, groups := range []int{1, 2, 4, 8} {
			c, clients := buildPDESBench(hosts, false)
			first := baseDigest == ""
			if first {
				r.VMs = len(c.Deployments())
				r.Clients = len(clients)
				r.LookaheadUS = float64(c.Cfg.Lookahead) / float64(simtime.Microsecond)
			}
			c.Start()
			start := time.Now()
			c.Run(total, groups)
			wall := time.Since(start).Seconds()
			c.Finish()

			digest := c.DigestString()
			if first {
				baseDigest = digest
				r.Events = c.Set.EventsFired()
				r.WindowsPerEdge = c.Set.Windows()
				for _, cl := range clients {
					r.Requests += uint64(cl.Sent())
				}
				for _, d := range c.Deployments() {
					r.Migrations += d.Migrations
				}
			} else if digest != baseDigest {
				r.DigestIdentical = false
				fmt.Printf("  [%v] groups=%d DIGEST DIVERGED from the baseline run\n", backend, groups)
			}
			if groups == 1 {
				baseWall = wall
			}
			row := pdesGroupRow{
				Backend:      backend.String(),
				Groups:       groups,
				WallSeconds:  wall,
				Speedup:      baseWall / wall,
				EventsPerSec: float64(r.Events) / wall,
			}
			r.Groups = append(r.Groups, row)
			fmt.Printf("  [%v] groups=%d  wall %7.3f s  speedup %4.2fx  %.2fM events/s\n",
				backend, groups, row.WallSeconds, row.Speedup, row.EventsPerSec/1e6)
		}
	}

	// The A/B leg: the same world advanced under the PR-7 protocol (one
	// global lookahead bounds every window). Observable state must match
	// the per-edge runs bit-for-bit; only the window count may differ.
	sim.DefaultBackend = eventq.BackendHeap
	gc, _ := buildPDESBench(hosts, true)
	gc.Start()
	gc.Run(total, 1)
	gc.Finish()
	r.WindowsGlobal = gc.Set.Windows()
	if digestSansWindows(gc.DigestString()) != digestSansWindows(baseDigest) {
		r.DigestIdentical = false
		fmt.Println("  global-window baseline DIGEST DIVERGED from per-edge runs")
	}
	if r.WindowsPerEdge > 0 {
		r.ReductionVsGlobal = float64(r.WindowsGlobal) / float64(r.WindowsPerEdge)
		r.ReductionVsBench6 = float64(bench6Windows) / float64(r.WindowsPerEdge)
	}

	fmt.Printf("  %d VMs, %d clients, %d requests, %d events, %d migrations; digests identical: %v\n",
		r.VMs, r.Clients, r.Requests, r.Events, r.Migrations, r.DigestIdentical)
	fmt.Printf("  windows: per-edge %d, global %d on this world (%.1fx fewer), BENCH_6 reference %d (%.1fx fewer)\n",
		r.WindowsPerEdge, r.WindowsGlobal, r.ReductionVsGlobal, r.WindowsBench6, r.ReductionVsBench6)
	if !r.DigestIdentical {
		log.Fatal("pdes bench: executor group counts disagreed — determinism contract broken")
	}

	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// TestFig3ConstantModeBackendIdentical pins two properties of the default
// (all-constant) cost model at once: the heap and wheel event-queue
// backends produce identical Figure-3 rows, and threading an explicit
// DefaultCosts through the config changes nothing against the nil
// (implicit default) path — the constant model never touches the cost RNG
// stream, so no run can observe which way it was plumbed.
func TestFig3ConstantModeBackendIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("several experiment runs")
	}
	cfg := Figure3Config{Seed: 1, Duration: 2 * simtime.Second, PCPUs: 15, Requests: 10}
	runUnder := func(b eventq.Backend, costs *hv.CostModel) []Figure3Row {
		t.Helper()
		old := sim.DefaultBackend
		sim.DefaultBackend = b
		defer func() { sim.DefaultBackend = old }()
		c := cfg
		c.Costs = costs
		return Figure3(c)
	}
	def := hv.DefaultCosts()
	heap := runUnder(eventq.BackendHeap, nil)
	wheel := runUnder(eventq.BackendWheel, nil)
	if !reflect.DeepEqual(heap, wheel) {
		t.Errorf("constant-mode Figure 3 differs across backends:\nheap:  %+v\nwheel: %+v", heap, wheel)
	}
	explicit := runUnder(eventq.BackendHeap, &def)
	if !reflect.DeepEqual(heap, explicit) {
		t.Errorf("explicit DefaultCosts differs from the implicit default:\nnil:      %+v\nexplicit: %+v", heap, explicit)
	}
}

// TestCalibratedCostsDeterministic checks a noisy-cost experiment is still
// a pure function of its seed: the cost stream is derived, not shared, so
// re-running the same config reproduces every row exactly.
func TestCalibratedCostsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("several experiment runs")
	}
	calib := hv.CalibratedCosts()
	cfg := Table6Config{Seed: 3, Duration: 2 * simtime.Second, PCPUs: 15, Costs: &calib}
	a := Table6(MultiRTAVMs, cfg)
	b := Table6(MultiRTAVMs, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("calibrated Table 6 not reproducible:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	def := Table6(MultiRTAVMs, Table6Config{Seed: 3, Duration: 2 * simtime.Second, PCPUs: 15})
	if a[0].CtxSwitchTime == def[0].CtxSwitchTime && a[0].ScheduleTime == def[0].ScheduleTime {
		t.Error("calibrated run matches constant run exactly — noise not applied")
	}
}

// TestFidelityAblationSmoke runs the full constant-vs-calibrated ablation
// at a short horizon and checks the report's shape: one row per Figure-3
// group plus the Table-6 trio, a described calibrated model, and a JSON
// encoding fit for BENCH_8.json.
func TestFidelityAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2×(12+2) simulations")
	}
	cfg := DefaultFidelityConfig()
	cfg.Duration = simtime.Seconds(2)
	res := FidelityAblation(cfg)
	wantRows := len(Table1Groups()) + 3
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	if len(res.Calib) != 11 {
		t.Errorf("calibrated_model has %d terms, want 11", len(res.Calib))
	}
	out := RenderFidelity(res)
	if !strings.Contains(out, "scheduler comparisons robust") {
		t.Errorf("render missing the robustness footer:\n%s", out)
	}
	buf, err := json.Marshal(&res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back FidelityResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, back.Rows) {
		t.Error("rows do not survive the JSON round trip")
	}
}

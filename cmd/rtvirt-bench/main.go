// Command rtvirt-bench regenerates the tables and figures of the RTVirt
// paper's evaluation (§4). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-versus-measured.
//
// Usage:
//
//	rtvirt-bench -experiment all            # everything (several minutes)
//	rtvirt-bench -experiment fig3           # one experiment
//	rtvirt-bench -experiment fig5a -seconds 30
//
// Experiments: fig1, table1, table2, fig3, sporadic, table3, fig4,
// table4, fig5a, fig5b, table5, table6, attacks, quickcheck, all.
//
// -experiment quickcheck runs the randomized invariant harness
// (internal/check/quick): -n scenarios per stack, seeded by -seed; any
// violation is shrunk to a minimal reproducer, exported with -out, and
// fails the process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rtvirt"
	"rtvirt/internal/report"
	"rtvirt/internal/runner"
)

// out is the optional artifact directory (-out flag); nil disables export.
var out *report.Dir

func main() {
	var (
		exp         = flag.String("experiment", "all", "which experiment to run (fig1, table1, table2, fig3, sporadic, table3, fig4, table4, fig5a, fig5b, table5, table6, ablations, fidelity, attacks, quickcheck, all)")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		seconds     = flag.Int64("seconds", 0, "override run length in simulated seconds (0 = per-experiment default)")
		outDir      = flag.String("out", "", "write machine-readable artifacts (CSV/JSON) to this directory")
		runs        = flag.Int("runs", 5, "seeds for -experiment robustness")
		n           = flag.Int("n", 25, "generated scenarios for -experiment quickcheck")
		parallel    = flag.Int("parallel", 0, "workers for independent simulations (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		kernel      = flag.Bool("kernel", false, "benchmark the event-queue kernel (wheel vs heap, both vs the recorded pre-rewrite baseline) and exit")
		benchOut    = flag.String("bench-out", "BENCH_5.json", "output path for the -kernel comparison report")
		forkWarmup  = flag.Bool("fork-warmup", false, "benchmark the fig5 warm-start fork sweep against its cold control and exit")
		forkOut     = flag.String("fork-out", "BENCH_4.json", "output path for the -fork-warmup comparison report")
		pdes        = flag.Bool("pdes", false, "benchmark the sharded conservative-PDES cluster (executor groups 1/2/4/8 on both eventq backends, per-edge vs global windows, digest identity enforced) and exit")
		pdesOut     = flag.String("pdes-out", "BENCH_7.json", "output path for the -pdes lookahead/topology report")
		pdesHosts   = flag.Int("pdes-hosts", 64, "hosts (= shards) for the -pdes sweep")
		fidelityOut = flag.String("fidelity-out", "BENCH_8.json", "output path for the -experiment fidelity ablation record")
		attacksOut  = flag.String("attacks-out", "BENCH_9.json", "output path for the -experiment attacks record")
	)
	flag.Parse()
	runner.SetDefault(*parallel)
	if *kernel {
		runner.SetDefault(1) // sequential: the wall-time leg measures the kernel, not the pool
		runKernel(*benchOut)
		return
	}
	if *forkWarmup {
		runner.SetDefault(1) // sequential: the delta measures the fork, not the pool
		runForkWarmup(*forkOut)
		return
	}
	if *pdes {
		// The sharded run brings its own executor pool; the group count
		// under test is the only parallelism knob.
		runner.SetDefault(1)
		runPDES(*pdesOut, *pdesHosts, *seconds)
		return
	}
	if *outDir != "" {
		d, err := report.NewDir(*outDir)
		if err != nil {
			log.Fatal(err)
		}
		out = d
		defer func() {
			if len(out.Written) > 0 {
				fmt.Printf("artifacts written to %s: %s\n", out.Path(), strings.Join(out.Written, ", "))
			}
		}()
	}

	runners := map[string]func(){
		"fig1":       func() { runFig1(*seed, *seconds) },
		"table1":     runTable1,
		"table2":     func() { runTable2(*seed, *seconds) },
		"fig3":       func() { runFig3(*seed, *seconds, false) },
		"sporadic":   func() { runFig3(*seed, *seconds, true) },
		"table3":     runTable3,
		"fig4":       func() { runFig4(*seed, *seconds) },
		"table4":     func() { runTable4(*seed, *seconds) },
		"fig5a":      func() { runFig5(*seed, *seconds, false) },
		"fig5b":      func() { runFig5(*seed, *seconds, true) },
		"table5":     runTable5,
		"table6":     func() { runTable6(*seed, *seconds) },
		"ablations":  func() { runAblations(*seed, *seconds) },
		"io":         func() { runIO(*seed, *seconds) },
		"surge":      func() { runSurge(*seed, *seconds) },
		"loadsteps":  func() { runLoadSteps(*seed, *seconds) },
		"bisect":     func() { runBisect(*seed, *seconds) },
		"robustness": func() { runRobustness(*runs, *seconds) },
		"fidelity":   func() { runFidelity(*seed, *seconds, *parallel, *fidelityOut) },
		"attacks":    func() { runAttacks(*seed, *seconds, *attacksOut) },
		"quickcheck": func() { runQuickcheck(*seed, *n, *seconds) },
	}
	order := []string{"fig1", "table1", "table2", "fig3", "sporadic", "table3",
		"fig4", "table4", "fig5a", "fig5b", "table5", "table6", "ablations", "io",
		"surge", "loadsteps", "bisect", "robustness", "fidelity", "attacks", "quickcheck"}

	name := strings.ToLower(*exp)
	if name == "all" {
		for _, n := range order {
			fmt.Printf("==== %s ====\n", n)
			runners[n]()
			fmt.Println()
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %s or all\n",
			name, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}

func secondsOr(s int64, def rtvirt.Duration) rtvirt.Duration {
	if s > 0 {
		return rtvirt.Duration(s) * rtvirt.Second
	}
	return def
}

func runFig1(seed uint64, secs int64) {
	fmt.Println(rtvirt.Figure1(seed, secondsOr(secs, 60*rtvirt.Second)).Render())
}

func runTable1() {
	fmt.Println("Table 1 — periodic RTA groups")
	for _, g := range rtvirt.Table1Groups() {
		fmt.Printf("  %-12s %-12s", g.Name, g.Category)
		for _, p := range g.RTAs {
			fmt.Printf(" %v", p)
		}
		fmt.Printf("  (Σ %.3f CPUs)\n", g.Bandwidth())
	}
}

func runTable2(seed uint64, secs int64) {
	cfg := rtvirt.DefaultFigure3Config()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, cfg.Duration)
	fmt.Println(rtvirt.RenderTable2(rtvirt.Table2(cfg)))
}

func runFig3(seed uint64, secs int64, sporadic bool) {
	cfg := rtvirt.DefaultFigure3Config()
	cfg.Seed = seed
	cfg.Sporadic = sporadic
	cfg.Duration = secondsOr(secs, cfg.Duration)
	if sporadic {
		cfg.Duration = secondsOr(secs, 60*rtvirt.Second)
	}
	rows := rtvirt.Figure3(cfg)
	label := "Figure 3 (periodic)"
	if sporadic {
		label = "§4.2 sporadic RTAs"
	}
	if out != nil && !sporadic {
		if err := out.Figure3(rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(label)
	fmt.Println(rtvirt.RenderFigure3(rows))
	var req, xen, virt float64
	for _, r := range rows {
		req += r.RTAReq
		xen += r.RTXenClaimed
		virt += r.RTVirtAllocated
	}
	fmt.Printf("Across groups: RTVirt claims %.1f%% less bandwidth than RT-Xen (paper: 39.4%%)\n",
		100*(1-virt/xen))
}

func runTable3() {
	fmt.Println("Table 3 — video streaming profiles")
	for _, p := range rtvirt.VideoProfiles() {
		fmt.Printf("  %2d fps: %5.1f%% CPU, %v\n", p.FPS, 100*p.Bandwidth, p.Params)
	}
}

func runFig4(seed uint64, secs int64) {
	cfg := rtvirt.DefaultFigure4Config()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, cfg.Duration)
	r := rtvirt.Figure4(cfg)
	if out != nil {
		if err := out.Figure4(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(r.Render())
}

func runTable4(seed uint64, secs int64) {
	rows := rtvirt.Table4(seed, secondsOr(secs, 120*rtvirt.Second))
	if out != nil {
		if err := out.Table4(rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(rtvirt.RenderTable4(rows))
}

func runFig5(seed uint64, secs int64, b bool) {
	cfg := rtvirt.DefaultFigure5Config()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, cfg.Duration)
	if b {
		rows := rtvirt.Figure5b(cfg)
		if out != nil {
			if err := out.Figure5("fig5b", rows); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println(rtvirt.RenderFigure5("Figure 5b", rows, cfg.SLO))
		return
	}
	rows := rtvirt.Figure5a(cfg)
	if out != nil {
		if err := out.Figure5("fig5a", rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(rtvirt.RenderFigure5("Figure 5a", rows, cfg.SLO))
}

func runTable5() {
	fmt.Println("Table 5 — scalability RTA groups")
	for _, g := range rtvirt.Table5Groups() {
		fmt.Printf("  %-9s %v\n", g.Name, g.RTAs[0])
	}
}

func runAblations(seed uint64, secs int64) {
	d := secondsOr(secs, 20*rtvirt.Second)
	fmt.Println(rtvirt.RenderAblation("Ablation — DP-WRAP minimum global slice (sub-ms workload)",
		"sched ms/s", rtvirt.AblationMinSlice(seed, d)))
	fmt.Println(rtvirt.RenderAblation("Ablation — per-VCPU budget slack (all Table-1 groups)",
		"alloc CPUs", rtvirt.AblationSlack(seed, d)))
	fmt.Println(rtvirt.RenderAblation("Ablation — server flavour (Figure-1 workload)",
		"RTA2 resp µs", rtvirt.AblationServerFlavour(seed, d)))
	fmt.Println(rtvirt.RenderAblation("Ablation — work-conserving leftover sharing (under-reserved memcached)",
		"mean µs", rtvirt.AblationWorkConserving(seed, d)))
	fmt.Println(rtvirt.RenderAblation("Ablation — §6 idle tax (over-claiming idle VM)",
		"newcomer admitted", rtvirt.AblationIdleTax(seed, d)))
	fmt.Println(rtvirt.RenderAblation("Ablation — guest scheduler: pEDF vs gEDF (§3.2)",
		"guest sw/s", rtvirt.AblationGuestScheduler(seed, d)))
	fmt.Println(rtvirt.RenderAblation("Ablation — forked counterfactual admission (idle-tax world)",
		"newcomer admitted", rtvirt.AblationNewcomerForked(seed, d)))
}

func runSurge(seed uint64, secs int64) {
	cfg := rtvirt.DefaultFigure4Config()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, 120*rtvirt.Second)
	warm := cfg.Duration / 2
	rows := rtvirt.Figure4Surge(cfg, []int{0, 2, 4, 8}, warm, cfg.Duration-warm)
	fmt.Println(rtvirt.RenderFigure4Surge(rows))
}

func runLoadSteps(seed uint64, secs int64) {
	cfg := rtvirt.DefaultLoadStepConfig()
	cfg.Seed = seed
	if secs > 0 {
		cfg.Duration = rtvirt.Duration(secs) * rtvirt.Second
		cfg.Warmup = cfg.Duration * 2 / 3
	}
	rows := rtvirt.Figure5LoadSteps(cfg)
	fmt.Println(rtvirt.RenderLoadSteps(rows, rtvirt.DefaultFigure5Config().SLO))
}

// runBisect demonstrates the divergence bisector on the two server-based
// stacks: the same three reserved VMs under RT-Xen's deferrable servers
// versus plain two-level EDF's polling servers.
func runBisect(seed uint64, secs int64) {
	horizon := secondsOr(secs, 5*rtvirt.Second)
	build := func(stack rtvirt.Stack) func() *rtvirt.System {
		return func() *rtvirt.System {
			cfg := rtvirt.DefaultConfig(stack)
			cfg.PCPUs = 2
			cfg.Seed = seed
			sys := rtvirt.NewSystem(cfg)
			apps := make([]*rtvirt.RTApp, 0, 4)
			for i := 0; i < 4; i++ {
				g, err := sys.NewServerGuest(fmt.Sprintf("vm%d", i),
					[]rtvirt.Reservation{{Budget: 4 * rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond}}, 256)
				if err != nil {
					log.Fatal(err)
				}
				// The task period drifts against the server period, so servers
				// regularly idle with leftover budget — the moment deferrable
				// (keep it) and polling (burn it) servers part ways.
				app, err := rtvirt.NewRTApp(g, i, fmt.Sprintf("rta%d", i),
					rtvirt.Params{Slice: 2 * rtvirt.Millisecond, Period: 7 * rtvirt.Millisecond})
				if err != nil {
					log.Fatal(err)
				}
				apps = append(apps, app)
			}
			sys.Start()
			for _, app := range apps {
				app.Start(0)
			}
			return sys
		}
	}
	res, err := rtvirt.Bisect(build(rtvirt.StackRTXen), build(rtvirt.StackTwoLevelEDF),
		horizon, 100*rtvirt.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bisect — deferrable (rt-xen) vs polling (two-level-edf) servers, same workload")
	fmt.Println(res.Render())
}

func runIO(seed uint64, secs int64) {
	d := secondsOr(secs, 60*rtvirt.Second)
	rows := rtvirt.IOBound(seed, d)
	if out != nil {
		if err := out.IO(rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(rtvirt.RenderIO(rows, rtvirt.DefaultIOAppConfig().SLO))
}

func runRobustness(runs int, secs int64) {
	d := secondsOr(secs, 60*rtvirt.Second)
	rows := rtvirt.Robustness(runs, d)
	if out != nil {
		if err := out.Robustness(rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(rtvirt.RenderRobustness(rows))
}

func runTable6(seed uint64, secs int64) {
	cfg := rtvirt.DefaultTable6Config()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, cfg.Duration)
	multi := rtvirt.Table6(rtvirt.MultiRTAVMs, cfg)
	single := rtvirt.Table6(rtvirt.SingleRTAVMs, cfg)
	if out != nil {
		if err := out.Table6("table6-multi.csv", multi); err != nil {
			log.Fatal(err)
		}
		if err := out.Table6("table6-single.csv", single); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(rtvirt.RenderTable6(multi))
	fmt.Println(rtvirt.RenderTable6(single))
}

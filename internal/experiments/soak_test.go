package experiments

import (
	"fmt"
	"os"
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// TestSoakMixedWorkload runs ten simulated minutes of everything at once —
// periodic video streams, sporadic memcached, I/O-bound RPCs, dynamic
// registration churn, background hogs — and checks the global guarantees
// and kernel invariants at the end.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("ten simulated minutes")
	}
	if os.Getenv("RTVIRT_SOAK") == "" {
		t.Skip("long soak; set RTVIRT_SOAK=1 to run (the nightly workflow does)")
	}
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 8
	cfg.Seed = 99
	sys := core.NewSystem(cfg)

	// Three steady video VMs.
	var steady []*workload.VideoStream
	for i, fps := range []int{24, 30, 48} {
		g := mustGuest(sys.NewGuest(fmt.Sprintf("video%d", i), 1))
		vs, err := workload.NewVideoStream(g, i, fps)
		must(err)
		steady = append(steady, vs)
	}
	// Two memcached shards.
	var shards []*workload.Memcached
	for i := 0; i < 2; i++ {
		zero := simtime.Duration(0)
		g := mustGuest(sys.NewGuestOpts(fmt.Sprintf("mc%d", i), core.GuestOpts{VCPUs: 1, Slack: &zero}))
		mc, err := workload.NewMemcached(g, 100+i, workload.DefaultMemcachedConfig())
		must(err)
		shards = append(shards, mc)
	}
	// One I/O-bound RPC service.
	zero := simtime.Duration(0)
	gio := mustGuest(sys.NewGuestOpts("rpc", core.GuestOpts{VCPUs: 1, Slack: &zero}))
	rpc, err := workload.NewIOApp(gio, 200, workload.DefaultIOAppConfig())
	must(err)
	// Two background hogs.
	for i := 0; i < 2; i++ {
		g := mustGuest(sys.NewWeightedGuest(fmt.Sprintf("bg%d", i), 1, 256))
		hog, err := workload.NewCPUHog(g, 300+i, "hog")
		must(err)
		defer func() { _ = hog }()
		sys.Sim.At(0, func(now simtime.Time) { g.ReleaseJob(hog.Task, simtime.Duration(1<<60)) })
	}
	// A churn VM registering and unregistering RTAs continuously.
	gch := mustGuest(sys.NewGuestOpts("churn", core.GuestOpts{VCPUs: 2, MaxVCPUs: 4}))
	var churned []*task.Task
	id := 1000
	var churn func(now simtime.Time)
	churn = func(now simtime.Time) {
		prof := workload.VideoProfiles[int(now/simtime.Time(simtime.Seconds(7)))%len(workload.VideoProfiles)]
		tk := task.New(id, fmt.Sprintf("churn%d", id), task.Periodic, prof.Params)
		id++
		if err := gch.Register(tk); err == nil {
			gch.StartPeriodic(tk, now)
			churned = append(churned, tk)
			sys.Sim.After(simtime.Seconds(5), func(at simtime.Time) {
				must(gch.Unregister(tk))
			})
		}
		sys.Sim.After(simtime.Seconds(7), churn)
	}
	sys.Sim.At(simtime.Time(simtime.Second), churn)

	sys.Start()
	for _, vs := range steady {
		vs.App.Start(0)
	}
	for _, mc := range shards {
		mc.Start(0)
	}
	rpc.Start(0)

	dur := 10 * simtime.Minute
	sys.Run(dur)
	sys.Host.Sync()

	// Steady video: zero misses through all the churn.
	for _, vs := range steady {
		if st := vs.App.Task.Stats(); st.Missed != 0 {
			t.Errorf("%s missed %d/%d", vs.App.Task.Name, st.Missed, st.Released)
		}
	}
	// memcached SLO at the 99.9th percentile.
	for i, mc := range shards {
		if p := mc.Latency.Percentile(99.9); p > simtime.Micros(500) {
			t.Errorf("mc%d p99.9 = %v", i, p)
		}
		if mc.Latency.Count() < 55000 {
			t.Errorf("mc%d served only %d", i, mc.Latency.Count())
		}
	}
	// RPC end-to-end SLO.
	if v := float64(rpc.SLOViolations) / float64(rpc.Latency.Count()); v > 0.001 {
		t.Errorf("rpc SLO violations %.4f", v)
	}
	// Churned tasks: ≥99% deadlines overall (abandon-on-unregister counts
	// the in-flight job of each cycle).
	sum := workload.MissSummary(churned)
	if sum.Judged < 1000 {
		t.Fatalf("churn barely ran: %+v", sum)
	}
	if sum.Ratio() > 0.01 {
		t.Errorf("churn miss ratio %.4f (%d/%d)", sum.Ratio(), sum.Missed, sum.Judged)
	}
	// Kernel invariants after ten minutes of churn.
	var accounted simtime.Duration
	for _, p := range sys.Host.PCPUs() {
		accounted += p.BusyTime + p.OverheadTime + p.IdleTime
	}
	want := simtime.Duration(int64(dur) * int64(sys.Host.NumPCPUs()))
	if accounted != want {
		t.Errorf("accounting leak: %v accounted of %v", accounted, want)
	}
	if ov := sys.Overhead().Percent; ov > 1.0 {
		t.Errorf("overhead %.3f%% above the paper's <1%% envelope", ov)
	}
}

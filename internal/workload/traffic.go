package workload

import (
	"fmt"
	"math"

	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// This file models open-loop production traffic: request streams whose
// rate is set by the outside world, not by the server's completion pace.
// Three canonical shapes cover the production envelope — a diurnal rate
// curve (the daily sine every user-facing service sees), an MMPP
// (Markov-modulated Poisson process, the standard burst model), and
// flash-crowd surges (linear ramp to a peak, linear decay back). All are
// time-inhomogeneous Poisson processes driven by one deterministic RNG
// stream, so the same seed yields the same arrival sequence under either
// event-queue backend and across forks.

// ArrivalProcess generates inter-arrival gaps for an open-loop stream.
// Next returns the gap from `now` to the next arrival; implementations
// may carry state (MMPP does), so Clone must deep-copy for forked runs.
type ArrivalProcess interface {
	Next(now simtime.Time, rng *sim.RNG) simtime.Duration
	Clone() ArrivalProcess
	String() string
}

// expGap draws an exponential gap at rateHz, floored at 1ns so an arrival
// process can never stall the event loop on a zero-length gap.
func expGap(rng *sim.RNG, rateHz float64) simtime.Duration {
	g := simtime.Duration(rng.ExpFloat64() / rateHz * 1e9)
	if g < 1 {
		g = 1
	}
	return g
}

// Poisson is a homogeneous Poisson arrival process at RateHz.
type Poisson struct {
	RateHz float64
}

// Next implements ArrivalProcess.
func (p Poisson) Next(_ simtime.Time, rng *sim.RNG) simtime.Duration {
	return expGap(rng, p.RateHz)
}

// Clone implements ArrivalProcess (stateless: the value is its own clone).
func (p Poisson) Clone() ArrivalProcess { return p }

// String implements ArrivalProcess.
func (p Poisson) String() string { return fmt.Sprintf("poisson(%.3g/s)", p.RateHz) }

// Diurnal is a nonhomogeneous Poisson process following a daily sine:
// λ(t) ramps from BaseHz (the nightly trough, at t = 0 when Phase = 0) up
// to PeakHz and back over each Day. Arrivals are drawn by thinning at
// PeakHz, which is exact for any bounded rate function. The long-run mean
// rate over whole days is (BaseHz + PeakHz) / 2.
type Diurnal struct {
	BaseHz float64
	PeakHz float64
	// Day is the curve's period (a production day, arbitrarily
	// compressible for simulation).
	Day simtime.Duration
	// Phase shifts the curve as a fraction of Day in [0, 1): 0 starts at
	// the trough, 0.5 at the peak.
	Phase float64
}

// rate evaluates λ(t).
func (d Diurnal) rate(t simtime.Time) float64 {
	x := float64(t)/float64(d.Day) + d.Phase
	// sin shifted so x = 0 is the trough and x = 0.5 the peak.
	s := (1 + math.Sin(2*math.Pi*(x-0.25))) / 2
	return d.BaseHz + (d.PeakHz-d.BaseHz)*s
}

// Next implements ArrivalProcess by thinning candidate arrivals at PeakHz.
func (d Diurnal) Next(now simtime.Time, rng *sim.RNG) simtime.Duration {
	t := now
	for {
		gap := expGap(rng, d.PeakHz)
		t = t.Add(gap)
		if rng.Float64()*d.PeakHz <= d.rate(t) {
			return t.Sub(now)
		}
	}
}

// Clone implements ArrivalProcess.
func (d Diurnal) Clone() ArrivalProcess { return d }

// String implements ArrivalProcess.
func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal(%.3g..%.3g/s day=%v)", d.BaseHz, d.PeakHz, d.Day)
}

// MMPP is a Markov-modulated Poisson process: the rate switches between
// states cyclically, each state holding for an exponential sojourn. With
// exponential sojourns the competing-clocks construction below (redraw the
// remaining sojourn whenever consulted) is exact by memorylessness. The
// stationary mean rate is Σ λᵢ·sᵢ / Σ sᵢ over (RatesHz, SojournMean).
type MMPP struct {
	RatesHz     []float64
	SojournMean []simtime.Duration

	state    int
	switchAt simtime.Time
	init     bool
}

// NewMMPP builds a cyclic MMPP. Panics on mismatched or empty inputs so a
// misconfigured model fails at construction, not mid-run.
func NewMMPP(ratesHz []float64, sojournMean []simtime.Duration) *MMPP {
	if len(ratesHz) == 0 || len(ratesHz) != len(sojournMean) {
		panic(fmt.Sprintf("workload: MMPP needs matching non-empty rates/sojourns, got %d/%d",
			len(ratesHz), len(sojournMean)))
	}
	return &MMPP{RatesHz: ratesHz, SojournMean: sojournMean}
}

// sojourn draws state s's exponential holding time, floored at 1ns.
func (m *MMPP) sojourn(rng *sim.RNG, s int) simtime.Duration {
	d := simtime.Duration(rng.ExpFloat64() * float64(m.SojournMean[s]))
	if d < 1 {
		d = 1
	}
	return d
}

// Next implements ArrivalProcess: race the next arrival at the current
// state's rate against the state switch; on a switch, advance time and
// redraw in the new state.
func (m *MMPP) Next(now simtime.Time, rng *sim.RNG) simtime.Duration {
	t := now
	if !m.init {
		m.init = true
		m.switchAt = t.Add(m.sojourn(rng, m.state))
	}
	for {
		gap := expGap(rng, m.RatesHz[m.state])
		if cand := t.Add(gap); cand.Before(m.switchAt) || cand == m.switchAt {
			return cand.Sub(now)
		}
		// The modulating chain switches first: jump to the switch instant
		// and redraw from the new state (exact — exponentials are
		// memoryless, so discarding the losing clock is free).
		t = m.switchAt
		m.state = (m.state + 1) % len(m.RatesHz)
		m.switchAt = t.Add(m.sojourn(rng, m.state))
	}
}

// Clone implements ArrivalProcess.
func (m *MMPP) Clone() ArrivalProcess {
	n := *m
	n.RatesHz = append([]float64(nil), m.RatesHz...)
	n.SojournMean = append([]simtime.Duration(nil), m.SojournMean...)
	return &n
}

// String implements ArrivalProcess.
func (m *MMPP) String() string { return fmt.Sprintf("mmpp(%d states)", len(m.RatesHz)) }

// Surge is one flash-crowd event: the rate climbs linearly from 0 to
// PeakHz over Ramp starting at At, then decays linearly back over Decay.
// Its expected extra arrivals are PeakHz · (Ramp + Decay) / 2.
type Surge struct {
	At     simtime.Time
	PeakHz float64
	Ramp   simtime.Duration
	Decay  simtime.Duration
}

// FlashCrowd layers Surges on top of a BaseHz Poisson floor, thinned at
// the worst-case rate (base + sum of peaks, exact even for overlapping
// surges).
type FlashCrowd struct {
	BaseHz float64
	Surges []Surge
}

// rate evaluates λ(t) = base + Σ active surge contributions.
func (f FlashCrowd) rate(t simtime.Time) float64 {
	r := f.BaseHz
	for _, s := range f.Surges {
		dt := t.Sub(s.At)
		switch {
		case dt < 0 || dt >= s.Ramp+s.Decay:
		case dt < s.Ramp:
			r += s.PeakHz * float64(dt) / float64(s.Ramp)
		default:
			r += s.PeakHz * float64(s.Ramp+s.Decay-dt) / float64(s.Decay)
		}
	}
	return r
}

// maxRate bounds λ for thinning.
func (f FlashCrowd) maxRate() float64 {
	r := f.BaseHz
	for _, s := range f.Surges {
		r += s.PeakHz
	}
	return r
}

// Next implements ArrivalProcess by thinning at the worst-case rate.
func (f FlashCrowd) Next(now simtime.Time, rng *sim.RNG) simtime.Duration {
	limit := f.maxRate()
	t := now
	for {
		gap := expGap(rng, limit)
		t = t.Add(gap)
		if rng.Float64()*limit <= f.rate(t) {
			return t.Sub(now)
		}
	}
}

// Clone implements ArrivalProcess.
func (f FlashCrowd) Clone() ArrivalProcess {
	n := f
	n.Surges = append([]Surge(nil), f.Surges...)
	return n
}

// String implements ArrivalProcess.
func (f FlashCrowd) String() string {
	return fmt.Sprintf("flash(%.3g/s base, %d surges)", f.BaseHz, len(f.Surges))
}

// OpenLoopClient drives a sporadic task with an ArrivalProcess: requests
// arrive on the process's schedule regardless of how the server is doing
// (open loop, like production traffic — a slow server builds a queue, it
// does not slow the clients). Sporadic releases that would violate the
// task's declared minimum inter-arrival are counted as Throttled, making
// burst-past-declared-rate pressure visible instead of silent.
type OpenLoopClient struct {
	Task  *task.Task
	Guest *guest.OS

	// Arrivals is the open-loop arrival process.
	Arrivals ArrivalProcess
	// NetworkDelay separates the client-side send from the job release.
	NetworkDelay simtime.Duration
	// Service draws each request's CPU demand; nil uses the declared slice.
	Service dist.Duration

	// Latency records response times (release → completion).
	Latency metrics.LatencyRecorder
	// Offered counts requests sent; Throttled those suppressed by the
	// sporadic minimum inter-arrival constraint.
	Offered   int
	Throttled int

	sim *sim.Simulator
	rng *sim.RNG
	id  int32
}

// NewOpenLoopClient registers a sporadic task on g and wires an open-loop
// client driving it.
func NewOpenLoopClient(g *guest.OS, id int, name string, p task.Params, proc ArrivalProcess) (*OpenLoopClient, error) {
	t := task.New(id, name, task.Sporadic, p)
	if err := g.Register(t); err != nil {
		return nil, err
	}
	return NewOpenLoopClientFor(g, t, proc), nil
}

// NewOpenLoopClientFor wires an open-loop client onto an already-registered
// sporadic task.
func NewOpenLoopClientFor(g *guest.OS, t *task.Task, proc ArrivalProcess) *OpenLoopClient {
	c := &OpenLoopClient{
		Task:         t,
		Guest:        g,
		Arrivals:     proc,
		NetworkDelay: DefaultNetworkDelay(),
		sim:          g.VM().Host().Sim,
	}
	c.id = c.sim.RegisterHandler(c)
	t.OnJobDone = c.jobDone
	return c
}

func (c *OpenLoopClient) jobDone(j *task.Job) {
	c.Latency.Add(j.Finish.Sub(j.Release))
}

// Start schedules the request stream beginning at the given instant.
func (c *OpenLoopClient) Start(at simtime.Time) {
	c.rng = c.sim.RNG().Split()
	c.sim.PostAt(at, sim.Payload{Handler: c.id, Kind: evOpenLoopFire})
}

// HandleSimEvent implements sim.Handler.
func (c *OpenLoopClient) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evOpenLoopFire:
		c.fire(now)
	case evOpenLoopRelease:
		if c.Task.EarliestNextRelease() <= now {
			c.Guest.ReleaseJob(c.Task, simtime.Duration(ev.Arg0))
		} else {
			c.Throttled++
		}
	default:
		panic(fmt.Sprintf("workload: unknown open-loop event kind %d", ev.Kind))
	}
}

func (c *OpenLoopClient) fire(now simtime.Time) {
	c.Offered++
	var demand int64
	if c.Service != nil {
		demand = int64(c.Service.Sample(c.rng))
	}
	c.sim.PostAt(now.Add(c.NetworkDelay),
		sim.Payload{Handler: c.id, Kind: evOpenLoopRelease, Arg0: demand})
	c.sim.PostAt(now.Add(c.Arrivals.Next(now, c.rng)),
		sim.Payload{Handler: c.id, Kind: evOpenLoopFire})
}

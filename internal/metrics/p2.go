package metrics

import (
	"fmt"

	"rtvirt/internal/simtime"
)

// P2Quantile is the Jain–Chlamtac P² streaming quantile estimator: it
// tracks one quantile of an unbounded latency stream in O(1) memory, for
// simulations too long to retain every sample (LatencyRecorder keeps them
// all and is exact).
type P2Quantile struct {
	p     float64 // target quantile in (0,1)
	n     int     // samples seen
	q     [5]float64
	pos   [5]int
	want  [5]float64
	inc   [5]float64
	first [5]float64 // buffer for the initial five samples
}

// NewP2Quantile creates an estimator for quantile p in (0,1), e.g. 0.999.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("metrics: P² quantile %g out of (0,1)", p))
	}
	e := &P2Quantile{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add feeds one observation.
func (e *P2Quantile) Add(d simtime.Duration) {
	x := float64(d)
	if e.n < 5 {
		e.first[e.n] = x
		e.n++
		if e.n == 5 {
			// Sort the first five and initialise markers.
			f := e.first
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && f[j] < f[j-1]; j-- {
					f[j], f[j-1] = f[j-1], f[j]
				}
			}
			for i := 0; i < 5; i++ {
				e.q[i] = f[i]
				e.pos[i] = i + 1
				e.want[i] = 1 + 4*e.inc[i]
			}
		}
		return
	}
	e.n++

	// Find the cell k containing x and update extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			// Parabolic prediction; fall back to linear if non-monotone.
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i, s int) float64 {
	fs := float64(s)
	n := [5]float64{float64(e.pos[0]), float64(e.pos[1]), float64(e.pos[2]), float64(e.pos[3]), float64(e.pos[4])}
	return e.q[i] + fs/(n[i+1]-n[i-1])*
		((n[i]-n[i-1]+fs)*(e.q[i+1]-e.q[i])/(n[i+1]-n[i])+
			(n[i+1]-n[i]-fs)*(e.q[i]-e.q[i-1])/(n[i]-n[i-1]))
}

func (e *P2Quantile) linear(i, s int) float64 {
	return e.q[i] + float64(s)*(e.q[i+s]-e.q[i])/(float64(e.pos[i+s])-float64(e.pos[i]))
}

// Count reports the number of observations.
func (e *P2Quantile) Count() int { return e.n }

// Value reports the current quantile estimate. With fewer than five
// samples it falls back to the max seen.
func (e *P2Quantile) Value() simtime.Duration {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		max := e.first[0]
		for i := 1; i < e.n; i++ {
			if e.first[i] > max {
				max = e.first[i]
			}
		}
		return simtime.Duration(max)
	}
	return simtime.Duration(e.q[2])
}

package cluster

import (
	"fmt"
	"strings"
	"testing"

	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// buildShardedAdaptive deploys one VM per host carrying two live adaptive
// controllers pulling in opposite directions: "web" is a client-driven
// sporadic task squeezed under a tight latency target (INC_BW pressure),
// "lazy" an over-provisioned periodic task against a high hysteresis
// floor (DEC_BW pressure). Controllers are host-local machinery — they
// observe the resident host's trace bus and actuate through the resident
// guest — so their retuning must be invariant to the executor grouping.
func buildShardedAdaptive(t *testing.T) *Sharded {
	t.Helper()
	cfg := DefaultShardedConfig()
	c := NewSharded(cfg)
	for h := 0; h < cfg.Hosts; h++ {
		spec := VMSpec{
			Name:  fmt.Sprintf("svc%d", h),
			VCPUs: 2,
			Tasks: []TaskSpec{
				{Name: "web", Kind: task.Sporadic,
					Params: task.Params{Slice: simtime.Micros(200), Period: simtime.Millis(1)},
					Adaptive: &guest.AdaptiveConfig{
						// Below the ~200µs service time, so the window max
						// always breaches and the controller climbs to its
						// MaxSlice ceiling — deterministic INC_BW traffic.
						Target:   simtime.Micros(150),
						Window:   simtime.Millis(20),
						MaxSlice: simtime.Micros(600),
					}},
				{Name: "lazy", Kind: task.Periodic,
					Params: task.Params{Slice: simtime.Micros(1500), Period: simtime.Millis(10)},
					Adaptive: &guest.AdaptiveConfig{
						Target:      simtime.Millis(8),
						Window:      simtime.Millis(20),
						MinSlice:    simtime.Micros(300),
						LowFraction: 0.9,
					}},
				{Name: "bg", Kind: task.Background},
			},
		}
		d, err := c.Deploy(h, spec)
		if err != nil {
			t.Fatalf("deploy %s: %v", spec.Name, err)
		}
		if _, err := c.AddRemoteClient((h+1)%cfg.Hosts, d, 0,
			cfg.Lookahead+simtime.Micros(int64(40*h)),
			dist.Uniform{Lo: simtime.Micros(400), Hi: simtime.Millis(2)}, nil, 0); err != nil {
			t.Fatalf("client for %s: %v", spec.Name, err)
		}
	}
	return c
}

// TestShardedAdaptiveGroupInvariance runs the adaptive cluster under 1,
// 2, 4, and 8 executor groups and requires byte-identical digests — the
// digest includes each controller's incs/decs/rejects/windows counters
// and the task's final slice, so any grouping-dependent retuning shows
// up directly.
func TestShardedAdaptiveGroupInvariance(t *testing.T) {
	span := simtime.Millis(400)
	run := func(groups int) (string, *Sharded) {
		c := buildShardedAdaptive(t)
		c.Start()
		c.Run(span, groups)
		c.Finish()
		return c.DigestString(), c
	}
	base, c := run(1)

	// Non-vacuity: both directions of actuation must have fired
	// somewhere, and the digest must carry the controller lines.
	var incs, decs, windows int
	for _, d := range c.Deployments() {
		for i := range d.Spec.Tasks {
			if ct := d.Controller(i); ct != nil {
				incs += ct.Incs
				decs += ct.Decs
				windows += ct.Windows
			}
		}
	}
	if windows == 0 {
		t.Fatal("no controller windows closed; world is degenerate")
	}
	if incs == 0 {
		t.Error("no INC_BW issued anywhere — the web controllers never grew")
	}
	if decs == 0 {
		t.Error("no DEC_BW issued anywhere — the lazy controllers never shrank")
	}
	if !strings.Contains(base, "ctrl ") {
		t.Fatalf("digest carries no controller lines:\n%s", base)
	}

	for _, g := range []int{2, 4, 8} {
		got, _ := run(g)
		if got != base {
			t.Errorf("groups=%d digest differs from sequential:\n--- groups=1 ---\n%s--- groups=%d ---\n%s",
				g, base, g, got)
		}
	}
}

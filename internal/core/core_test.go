package core

import (
	"testing"

	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func TestRTVirtStackEndToEnd(t *testing.T) {
	cfg := DefaultConfig(RTVirt)
	cfg.PCPUs = 2
	sys := NewSystem(cfg)
	g, err := sys.NewGuest("vm0", 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.NewRTApp(g, 0, "rta", task.Params{Slice: ms(5), Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	app.Start(0)
	sys.Run(simtime.Seconds(5))
	st := app.Task.Stats()
	if st.Missed != 0 || st.Completed < 490 {
		t.Fatalf("stats: %+v", st)
	}
	if bw := sys.AllocatedBandwidth(); bw < 0.5 || bw > 0.6 {
		t.Fatalf("allocated = %.3f, want ≈0.55 (0.5 + slack)", bw)
	}
	if got := len(sys.AllTasks()); got != 1 {
		t.Fatalf("AllTasks = %d", got)
	}
	ov := sys.Overhead()
	if ov.Hypercalls == 0 {
		t.Fatal("cross-layer stack made no hypercalls")
	}
	if ov.Percent > 1.0 {
		t.Fatalf("overhead %.2f%% exceeds the paper's <1%% claim", ov.Percent)
	}
}

func TestRTXenStackEndToEnd(t *testing.T) {
	cfg := DefaultConfig(RTXen)
	cfg.PCPUs = 2
	sys := NewSystem(cfg)
	g, err := sys.NewServerGuest("vm0", []hv.Reservation{{Budget: ms(6), Period: ms(10)}}, 256)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.NewRTApp(g, 0, "rta", task.Params{Slice: ms(5), Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	app.Start(0)
	sys.Run(simtime.Seconds(5))
	if st := app.Task.Stats(); st.Missed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCreditStackEndToEnd(t *testing.T) {
	cfg := DefaultConfig(Credit)
	cfg.PCPUs = 1
	sys := NewSystem(cfg)
	g, err := sys.NewWeightedGuest("vm0", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	hog, err := workload.NewCPUHog(g, 0, "hog")
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	hog.Start(0)
	sys.Run(simtime.Seconds(1))
	sys.Host.Sync()
	if run := g.VM().TotalRun(); run < simtime.Millis(950) {
		t.Fatalf("hog ran %v of 1s", run)
	}
}

func TestTwoLevelEDFStackIsPolling(t *testing.T) {
	cfg := DefaultConfig(TwoLevelEDF)
	cfg.PCPUs = 1
	cfg.Costs = hv.CostModel{}
	sys := NewSystem(cfg)
	// Same scenario as the Figure-1 tests: RTA2 must miss.
	g1, err := sys.NewServerGuest("vm1", []hv.Reservation{{Budget: ms(5), Period: ms(15)}}, 256)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := sys.NewServerGuest("vm2", []hv.Reservation{{Budget: ms(5), Period: ms(10)}}, 256)
	g3, _ := sys.NewServerGuest("vm3", []hv.Reservation{{Budget: ms(5), Period: ms(30)}}, 256)
	rta1 := task.New(0, "rta1", task.Periodic, task.Params{Slice: ms(1), Period: ms(15)})
	rta2 := task.New(1, "rta2", task.Periodic, task.Params{Slice: ms(4), Period: ms(15)})
	rta3 := task.New(2, "r3", task.Periodic, task.Params{Slice: ms(5), Period: ms(10)})
	rta4 := task.New(3, "r4", task.Periodic, task.Params{Slice: ms(5), Period: ms(30)})
	if err := g1.RegisterOn(rta1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g1.RegisterOn(rta2, 0); err != nil {
		t.Fatal(err)
	}
	if err := g2.RegisterOn(rta3, 0); err != nil {
		t.Fatal(err)
	}
	if err := g3.RegisterOn(rta4, 0); err != nil {
		t.Fatal(err)
	}
	sys.Start()
	g1.StartPeriodic(rta1, 0)
	g1.StartPeriodic(rta2, simtime.Time(ms(2)))
	g2.StartPeriodic(rta3, 0)
	g3.StartPeriodic(rta4, 0)
	sys.Run(simtime.Seconds(30))
	if r := rta2.Stats().MissRatio(); r < 0.25 {
		t.Fatalf("RTA2 miss ratio %.2f; the uncoordinated baseline should miss", r)
	}
}

func TestStackString(t *testing.T) {
	for s, want := range map[Stack]string{
		RTVirt: "rtvirt", RTXen: "rt-xen", TwoLevelEDF: "two-level-edf",
		Credit: "credit", Stack(9): "Stack(9)",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestUnknownStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown stack did not panic")
		}
	}()
	NewSystem(Config{Stack: Stack(42), PCPUs: 1})
}

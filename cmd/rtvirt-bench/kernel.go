package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"rtvirt"
	"rtvirt/internal/eventq"
	"rtvirt/internal/simtime"
)

// Baseline numbers recorded on the pre-rewrite kernel (container/heap
// queue with closure-per-event scheduling, commit 210b422) on an Intel
// Xeon @ 2.10GHz — the same container class CI uses. The mix baseline ran
// the identical operation blend with Cancel+Schedule standing in for
// Reschedule, which the old API did not have. Wall time is the best of
// ten sequential fig3 runs at 100 simulated seconds, interleaved with the
// rewritten binary to cancel container noise.
const (
	baselineKernelMixNs   = 179.8 // median of 3 × 2s runs
	baselineScheduleFire  = 120.6 // median of 3 × 2s runs
	baselineFig3WallSecs  = 0.526
	baselineAllocsPerOp   = 0
	baselineKernelDetails = "container/heap, per-event closure, linear rtxen scan"
)

type kernelSide struct {
	KernelMixNsPerEvent float64 `json:"kernel_mix_ns_per_event"`
	KernelMixEventsSec  float64 `json:"kernel_mix_events_per_sec"`
	ScheduleFireNsPerOp float64 `json:"schedule_fire_ns_per_op"`
	Fig3WallSeconds     float64 `json:"fig3_100s_wall_seconds"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	Details             string  `json:"details"`
}

type kernelReport struct {
	Bench       string     `json:"bench"`
	GoVersion   string     `json:"go_version"`
	Baseline    kernelSide `json:"baseline"`
	Current     kernelSide `json:"current"`
	Improvement struct {
		KernelMixPct    float64 `json:"kernel_mix_pct"`
		ScheduleFirePct float64 `json:"schedule_fire_pct"`
		Fig3WallPct     float64 `json:"fig3_wall_pct"`
	} `json:"improvement"`
}

// benchKernelMix is the same blend as internal/eventq's BenchmarkKernelMix:
// per event fired, one standing handle moves (the hv per-PCPU timer), one
// fresh event is admitted, and the head pops.
func benchKernelMix(b *testing.B) {
	var q eventq.Queue
	nop := func(simtime.Time) {}
	rng := rand.New(rand.NewSource(1))
	standing := make([]eventq.Handle, 256)
	for i := range standing {
		standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
	}
	now := simtime.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(standing)
		standing[k] = q.Reschedule(standing[k], now+1_000_000+simtime.Time(rng.Int63n(1_000_000)))
		q.Schedule(now+1, nop)
		q.Fire()
		now++
	}
}

func benchScheduleFire(b *testing.B) {
	var q eventq.Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(simtime.Time(rng.Int63n(1<<30)), func(simtime.Time) {})
		if q.Len() > 1024 {
			q.Fire()
		}
	}
	for q.Fire() {
	}
}

// runKernel benchmarks the rewritten event-queue kernel against the
// recorded pre-rewrite baseline and writes the comparison to outPath
// (BENCH_3.json). The end-to-end leg runs Figure 3 sequentially so the
// wall-clock delta reflects the kernel, not worker-pool scheduling.
func runKernel(outPath string) {
	fmt.Println("Kernel microbenchmark — intrusive 4-ary event heap")

	mix := testing.Benchmark(benchKernelMix)
	sf := testing.Benchmark(benchScheduleFire)

	cfg := rtvirt.DefaultFigure3Config()
	cfg.Seed = 1
	cfg.Duration = 100 * rtvirt.Second
	wall := time.Duration(1<<62 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		rtvirt.Figure3(cfg)
		if d := time.Since(start); d < wall {
			wall = d
		}
	}

	var r kernelReport
	r.Bench = "eventq kernel mix (reschedule+schedule+fire per event)"
	r.GoVersion = runtime.Version()
	r.Baseline = kernelSide{
		KernelMixNsPerEvent: baselineKernelMixNs,
		KernelMixEventsSec:  1e9 / baselineKernelMixNs,
		ScheduleFireNsPerOp: baselineScheduleFire,
		Fig3WallSeconds:     baselineFig3WallSecs,
		AllocsPerOp:         baselineAllocsPerOp,
		Details:             baselineKernelDetails,
	}
	mixNs := float64(mix.NsPerOp())
	if mixNs == 0 {
		mixNs = float64(mix.T.Nanoseconds()) / float64(mix.N)
	}
	r.Current = kernelSide{
		KernelMixNsPerEvent: mixNs,
		KernelMixEventsSec:  1e9 / mixNs,
		ScheduleFireNsPerOp: float64(sf.NsPerOp()),
		Fig3WallSeconds:     wall.Seconds(),
		AllocsPerOp:         mix.AllocsPerOp(),
		Details:             "intrusive 4-ary heap, in-place reschedule, standing per-PCPU events",
	}
	pct := func(before, after float64) float64 { return 100 * (1 - after/before) }
	r.Improvement.KernelMixPct = pct(baselineKernelMixNs, mixNs)
	r.Improvement.ScheduleFirePct = pct(baselineScheduleFire, r.Current.ScheduleFireNsPerOp)
	r.Improvement.Fig3WallPct = pct(baselineFig3WallSecs, r.Current.Fig3WallSeconds)

	fmt.Printf("  kernel mix:    %8.1f ns/event  (baseline %.1f, %+.1f%%), %d allocs/op\n",
		mixNs, baselineKernelMixNs, r.Improvement.KernelMixPct, r.Current.AllocsPerOp)
	fmt.Printf("  schedule/fire: %8.1f ns/op     (baseline %.1f, %+.1f%%)\n",
		r.Current.ScheduleFireNsPerOp, baselineScheduleFire, r.Improvement.ScheduleFirePct)
	fmt.Printf("  fig3 @100s:    %8.3f s         (baseline %.3f, %+.1f%%)\n",
		r.Current.Fig3WallSeconds, baselineFig3WallSecs, r.Improvement.Fig3WallPct)

	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

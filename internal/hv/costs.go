package hv

import (
	"fmt"

	"rtvirt/internal/dist"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// Cost is one platform-overhead term: either a plain constant duration or a
// random variate drawn from an internal/dist distribution. The zero value is
// a zero-cost constant, so a zero CostModel still removes every overhead.
//
// The constant form is deliberately not routed through dist.Constant: the
// dist package clamps every sample to ≥1ns (a stalled event loop is worse
// than a free event there), while a zero platform cost must stay exactly
// zero, and — more importantly — a constant Cost must never consume a draw
// from the cost RNG stream. That last property is what keeps the default
// (all-constant) model bit-identical to the historical flat constants: the
// cost stream is simply never advanced, so no golden can observe it.
type Cost struct {
	c simtime.Duration
	d dist.Duration
}

// ConstCost returns a fixed-cost term.
func ConstCost(d simtime.Duration) Cost { return Cost{c: d} }

// DistCost returns a distribution-valued cost term.
func DistCost(d dist.Duration) Cost {
	if d == nil {
		panic("hv: DistCost with nil distribution")
	}
	return Cost{d: d}
}

// Constant reports whether the term is a plain constant (never samples).
func (c Cost) Constant() bool { return c.d == nil }

// Mean reports the term's expected value.
func (c Cost) Mean() simtime.Duration {
	if c.d == nil {
		return c.c
	}
	return c.d.Mean()
}

// Sample draws the next cost. Constant terms return their value without
// touching r, so an all-constant model never advances the cost stream.
func (c Cost) Sample(r *sim.RNG) simtime.Duration {
	if c.d == nil {
		return c.c
	}
	return c.d.Sample(r)
}

// String implements fmt.Stringer.
func (c Cost) String() string {
	if c.d == nil {
		return fmt.Sprintf("const(%v)", c.c)
	}
	return c.d.String()
}

// CostModel holds the per-cause platform costs the simulator charges. Every
// term is a Cost: a constant by default (the §4 figures of the paper), or a
// distribution for calibrated-fidelity runs in the style of Mhatre &
// Chandran's hypervisor-instruction timing study. Samples are drawn from a
// dedicated per-host cost RNG stream (Host.DrawCost), never from the main
// simulation stream, so enabling noise cannot perturb workload arrivals and
// the all-constant default stays bit-identical to the historical model.
//
// The zero value removes all overheads.
type CostModel struct {
	// Per-flag sched_rtvirt() hypercall latencies: an INC_BW call walks the
	// admission path, DEC_BW only releases, and INC_DEC_BW does both halves
	// atomically. SetHypercall sets all three at once.
	HypercallIncBW    Cost
	HypercallDecBW    Cost
	HypercallIncDecBW Cost
	// Cache-state-dependent host-level VCPU switch: Warm is charged when the
	// incoming VCPU last ran on this very PCPU (or the PCPU just goes idle —
	// registers saved, caches untouched), Cold when its working set lives
	// elsewhere (first dispatch or a VCPU arriving from another PCPU).
	CtxSwitchWarm Cost
	CtxSwitchCold Cost
	// Migration is the fixed extra cost when a VCPU changes PCPU;
	// MigrationPerMiB scales it with the VM's declared working-set size
	// (VM.WorkingSetMiB), charged once per MiB on top of Migration.
	Migration       Cost
	MigrationPerMiB Cost
	// Schedule-path cost: ScheduleBase per schedule() call plus
	// SchedulePerEntity per entity the scheduler examined.
	ScheduleBase      Cost
	SchedulePerEntity Cost
	// GuestSwitch is the guest-level process switch.
	GuestSwitch Cost
	// Tick is the periodic accounting-tick cost charged per busy PCPU by
	// tick-driven schedulers (Credit). It used to live on credit.Config as
	// TickCost; that knob remains as a deprecated override.
	Tick Cost
}

// HypercallCost selects the per-flag hypercall term.
func (m *CostModel) HypercallCost(f HypercallFlag) Cost {
	switch f {
	case IncBW:
		return m.HypercallIncBW
	case DecBW:
		return m.HypercallDecBW
	default:
		return m.HypercallIncDecBW
	}
}

// SetHypercall sets every hypercall flag to the same term, for models that
// do not distinguish causes (the paper's flat 10µs).
func (m *CostModel) SetHypercall(c Cost) {
	m.HypercallIncBW = c
	m.HypercallDecBW = c
	m.HypercallIncDecBW = c
}

// SetContextSwitch sets the warm and cold switch terms to the same value.
func (m *CostModel) SetContextSwitch(c Cost) {
	m.CtxSwitchWarm = c
	m.CtxSwitchCold = c
}

// Constant reports whether every term in the model is a plain constant —
// i.e. whether a run under this model can ever touch the cost RNG stream.
func (m *CostModel) Constant() bool {
	return m.HypercallIncBW.Constant() && m.HypercallDecBW.Constant() &&
		m.HypercallIncDecBW.Constant() &&
		m.CtxSwitchWarm.Constant() && m.CtxSwitchCold.Constant() &&
		m.Migration.Constant() && m.MigrationPerMiB.Constant() &&
		m.ScheduleBase.Constant() && m.SchedulePerEntity.Constant() &&
		m.GuestSwitch.Constant() && m.Tick.Constant()
}

// DefaultCosts returns the cost model used throughout the evaluation: the
// flat constants reported in §4 of the paper. All terms are constants, so
// runs under it are bit-identical to the historical flat model.
func DefaultCosts() CostModel {
	m := CostModel{
		Migration:         ConstCost(simtime.Micros(3)),
		ScheduleBase:      ConstCost(simtime.Micros(1)),
		SchedulePerEntity: ConstCost(100 * simtime.Nanosecond),
		GuestSwitch:       ConstCost(simtime.Microsecond),
		Tick:              ConstCost(simtime.Micros(20)),
	}
	m.SetHypercall(ConstCost(simtime.Micros(10))) // §4.5: 10µs per hypercall
	m.SetContextSwitch(ConstCost(simtime.Micros(2)))
	return m
}

// CalibratedCosts returns a distribution-valued model in the spirit of
// Mhatre & Chandran's measurements: hypervisor costs are heavy-tailed and
// cause-dependent. Means sit near the paper's §4 constants so constant-vs-
// calibrated ablations isolate the effect of noise and cause-dependence
// rather than a wholesale cost rescale; tails and per-cause splits follow
// the qualitative shape of the measured traces (log-normal hypercall paths,
// near-deterministic warm switches, Pareto-tailed cold switches and
// migrations, per-MiB dirty-state copy cost).
func CalibratedCosts() CostModel {
	return CostModel{
		HypercallIncBW:    DistCost(dist.LogNormalFromMoments(simtime.Micros(10), 0.45)),
		HypercallDecBW:    DistCost(dist.LogNormalFromMoments(simtime.Micros(7), 0.35)),
		HypercallIncDecBW: DistCost(dist.LogNormalFromMoments(simtime.Micros(14), 0.5)),
		CtxSwitchWarm: DistCost(dist.Normal{
			MeanD: simtime.Microsecond, Stddev: 200 * simtime.Nanosecond, Min: 200 * simtime.Nanosecond}),
		CtxSwitchCold: DistCost(dist.BoundedPareto{
			Lo: simtime.Micros(2), Hi: simtime.Micros(50), Alpha: 2.2}),
		Migration: DistCost(dist.BoundedPareto{
			Lo: simtime.Micros(3), Hi: simtime.Micros(80), Alpha: 1.8}),
		MigrationPerMiB: ConstCost(120 * simtime.Nanosecond),
		ScheduleBase: DistCost(dist.Normal{
			MeanD: simtime.Microsecond, Stddev: 250 * simtime.Nanosecond, Min: 100 * simtime.Nanosecond}),
		SchedulePerEntity: ConstCost(100 * simtime.Nanosecond),
		GuestSwitch: DistCost(dist.Normal{
			MeanD: simtime.Microsecond, Stddev: 300 * simtime.Nanosecond, Min: 100 * simtime.Nanosecond}),
		Tick: DistCost(dist.Normal{
			MeanD: simtime.Micros(20), Stddev: simtime.Micros(4), Min: simtime.Micros(2)}),
	}
}

// DrawCost samples a cost term from the host's dedicated cost RNG stream.
// The stream is derived from (simulator seed, host handler ID) — never from
// the main RNG — is cloned by Fork, and is owned per-host in sharded runs,
// so noisy costs preserve fork bit-identity and PDES group-invariance.
func (h *Host) DrawCost(c Cost) simtime.Duration { return c.Sample(h.costRNG) }

// ScheduleCost samples the cost of one schedule() invocation that examined
// work entities: one base draw plus work × one per-entity draw.
func (h *Host) ScheduleCost(work int) simtime.Duration {
	c := h.Costs.ScheduleBase.Sample(h.costRNG)
	if work > 0 {
		c += simtime.Duration(work) * h.Costs.SchedulePerEntity.Sample(h.costRNG)
	}
	return c
}

// ctxSwitchCost samples the context-switch term for PCPU p switching to nv:
// warm when nv last ran here (or the PCPU goes idle), cold otherwise.
func (h *Host) ctxSwitchCost(p *PCPU, nv *VCPU) simtime.Duration {
	if nv != nil && h.hot[nv.ID].LastPCPU != int32(p.ID) {
		return h.Costs.CtxSwitchCold.Sample(h.costRNG)
	}
	return h.Costs.CtxSwitchWarm.Sample(h.costRNG)
}

// migrationCost samples the cross-PCPU migration term for nv: the fixed
// Migration draw plus WorkingSetMiB × one per-MiB draw.
func (h *Host) migrationCost(nv *VCPU) simtime.Duration {
	c := h.Costs.Migration.Sample(h.costRNG)
	if wss := nv.VM.WorkingSetMiB; wss > 0 {
		c += simtime.Duration(wss) * h.Costs.MigrationPerMiB.Sample(h.costRNG)
	}
	return c
}

package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

// wrap embeds one task-level JSON fragment into a minimal scenario.
func wrap(taskJSON string) string {
	return `{"vms":[{"name":"v","tasks":[` + taskJSON + `]}]}`
}

// TestWorkloadBlockValidation drives the strict validation of the
// arrivals/adaptive/evader blocks: every malformed fragment must be
// rejected at Parse or Validate, every well-formed one accepted.
func TestWorkloadBlockValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"poisson ok", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"poisson":{"rate_hz":50}}}`, true},
		{"diurnal ok", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"diurnal":{"base_hz":10,"peak_hz":90,"day_ms":1000,"phase":0.5}}}`, true},
		{"mmpp ok", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"mmpp":{"rates_hz":[20,80],"sojourn_ms":[50,150]}}}`, true},
		{"flash ok", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"flash":{"base_hz":40,"surges":[{"at_ms":100,"peak_hz":120,"ramp_ms":50,"decay_ms":80}]}}}`, true},
		{"adaptive ok", `{"name":"t","slice_us":100,"period_us":5000,
			"adaptive":{"target_us":2000}}`, true},
		{"evader ok", `{"name":"t","kind":"evader","evader":{"tick_us":10000}}`, true},
		{"evader zero block", `{"name":"t","kind":"evader"}`, true},

		{"arrivals empty", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{}}`, false},
		{"arrivals two forms", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"poisson":{"rate_hz":50},"mmpp":{"rates_hz":[1],"sojourn_ms":[1]}}}`, false},
		{"arrivals on periodic", `{"name":"t","slice_us":100,"period_us":5000,
			"arrivals":{"poisson":{"rate_hz":50}}}`, false},
		{"arrivals unknown field", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"poisson":{"rate_hz":50,"burst":3}}}`, false},
		{"poisson zero rate", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"poisson":{"rate_hz":0}}}`, false},
		{"diurnal base above peak", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"diurnal":{"base_hz":90,"peak_hz":10,"day_ms":1000}}}`, false},
		{"diurnal zero day", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"diurnal":{"base_hz":10,"peak_hz":90,"day_ms":0}}}`, false},
		{"diurnal phase out of range", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"diurnal":{"base_hz":10,"peak_hz":90,"day_ms":1000,"phase":1}}}`, false},
		{"mmpp length mismatch", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"mmpp":{"rates_hz":[20,80],"sojourn_ms":[50]}}}`, false},
		{"mmpp zero sojourn", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"mmpp":{"rates_hz":[20],"sojourn_ms":[0]}}}`, false},
		{"flash zero ramp", `{"name":"t","kind":"sporadic","slice_us":100,"period_us":5000,
			"arrivals":{"flash":{"base_hz":40,"surges":[{"at_ms":0,"peak_hz":120,"ramp_ms":0,"decay_ms":80}]}}}`, false},

		{"adaptive zero target", `{"name":"t","slice_us":100,"period_us":5000,
			"adaptive":{"target_us":0}}`, false},
		{"adaptive min above max", `{"name":"t","slice_us":100,"period_us":5000,
			"adaptive":{"target_us":2000,"min_slice_us":500,"max_slice_us":200}}`, false},
		{"adaptive step one", `{"name":"t","slice_us":100,"period_us":5000,
			"adaptive":{"target_us":2000,"step":1}}`, false},
		{"adaptive low fraction above one", `{"name":"t","slice_us":100,"period_us":5000,
			"adaptive":{"target_us":2000,"low_fraction":1.5}}`, false},
		{"adaptive on background", `{"name":"t","kind":"background",
			"adaptive":{"target_us":2000}}`, false},
		{"adaptive on evader", `{"name":"t","kind":"evader",
			"adaptive":{"target_us":2000}}`, false},

		{"evader block on periodic", `{"name":"t","slice_us":100,"period_us":5000,
			"evader":{"tick_us":10000}}`, false},
		{"evader negative tick", `{"name":"t","kind":"evader","evader":{"tick_us":-1}}`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc, err := Parse(strings.NewReader(wrap(c.json)))
			if err == nil {
				err = sc.Validate()
			}
			if c.ok && err != nil {
				t.Fatalf("expected valid, got: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatalf("expected rejection, got none")
			}
		})
	}
}

// TestWorkloadBlockRoundTrip pins the canonical marshal: a scenario with
// all three blocks survives marshal → re-parse bit-exactly, and absent
// blocks stay absent in the output.
func TestWorkloadBlockRoundTrip(t *testing.T) {
	raw := `{"stack":"credit","pcpus":2,"seconds":3,"seed":9,"vms":[
		{"name":"a","weight":256,"tasks":[
			{"name":"web","kind":"sporadic","slice_us":200,"period_us":5000,"rate_hz":80,
			 "arrivals":{"flash":{"base_hz":60,"surges":[{"at_ms":250,"peak_hz":200,"ramp_ms":100,"decay_ms":150}]}},
			 "adaptive":{"target_us":2500,"window_ms":40,"max_slice_us":700,"step":0.5}},
			{"name":"ev","kind":"evader","evader":{"tick_us":10000}}]},
		{"name":"b","tasks":[{"name":"p","slice_us":300,"period_us":10000}]}]}`
	sc, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", sc, back)
	}
	if strings.Contains(string(out), `"arrivals":{}`) ||
		strings.Contains(string(out), `"adaptive":null`) {
		t.Fatalf("non-canonical marshal: %s", out)
	}
	plain, _ := json.Marshal(sc.VMs[1].Tasks[0])
	for _, field := range []string{"arrivals", "adaptive", "evader"} {
		if strings.Contains(string(plain), field) {
			t.Fatalf("absent %s block marshaled: %s", field, plain)
		}
	}
}

// TestScenarioWiresWorkloadBlocks builds a world carrying all three
// blocks and checks the drivers exist and actually run: the evader
// releases jobs, the open-loop stream offers requests, and the controller
// closes observation windows.
func TestScenarioWiresWorkloadBlocks(t *testing.T) {
	raw := `{"stack":"credit","pcpus":2,"seconds":2,"seed":3,"vms":[
		{"name":"atk","weight":256,"tasks":[
			{"name":"ev","kind":"evader","evader":{"tick_us":10000}}]},
		{"name":"svc","weight":256,"tasks":[
			{"name":"web","kind":"sporadic","slice_us":200,"period_us":5000,"rate_hz":100,
			 "arrivals":{"mmpp":{"rates_hz":[50,150],"sojourn_ms":[100,100]}},
			 "adaptive":{"target_us":2500,"window_ms":50,"max_slice_us":600}}]}]}`
	sc, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(w.Evaders()); n != 1 {
		t.Fatalf("Evaders() = %d, want 1", n)
	}
	if n := len(w.Controllers()); n != 1 {
		t.Fatalf("Controllers() = %d, want 1", n)
	}
	w.Start()
	w.Sys.Run(simtime.Duration(w.Seconds) * simtime.Second)
	res := w.Finish()

	ev := w.Evaders()[0]
	if ev.Bursts == 0 {
		t.Errorf("evader never attacked: probes=%d bursts=%d", ev.Probes, ev.Bursts)
	}
	ctrl := w.Controllers()[0]
	if ctrl.Windows == 0 {
		t.Errorf("controller closed no windows")
	}
	var web *TaskResult
	for i := range res.Tasks {
		if res.Tasks[i].Name == "web" {
			web = &res.Tasks[i]
		}
	}
	if web == nil || web.Stats.Released == 0 {
		t.Fatalf("open-loop stream released nothing: %+v", web)
	}
	if web.Latency == nil || web.Latency.Count() == 0 {
		t.Errorf("open-loop latency recorder empty")
	}
}

// Package csa implements the offline compositional schedulability analysis
// RT-Xen needs to configure its VM interfaces — the stand-in for the CARTS
// tool and the DMPR model referenced in §4.2 of the RTVirt paper.
//
// A component (one VCPU's task set under EDF) is abstracted by a periodic
// resource interface Γ = (Π, Θ): Θ units of CPU every Π. The component is
// schedulable iff the EDF demand bound function never exceeds the
// interface's worst-case supply bound function (Shin & Lee's periodic
// resource model). CARTS searches candidate periods for the interface with
// minimal bandwidth; the host then needs enough physical CPUs to schedule
// all VM interfaces under gEDF, which this package estimates with the
// Bertogna–Cirinei–Lipari interference test (the stand-in for DMPR's
// claimed-CPU count; EXPERIMENTS.md records where the two differ).
//
// The pessimism of this analysis — interfaces strictly larger than the
// task bandwidth, claimed CPUs strictly larger than allocated bandwidth —
// is not a bug: it is the waste the paper's Figure 3 quantifies.
package csa

import (
	"fmt"
	"sort"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Interface is a periodic resource abstraction: Budget units of CPU time
// in every Period.
type Interface struct {
	Period simtime.Duration
	Budget simtime.Duration
}

// Bandwidth reports Budget/Period.
func (i Interface) Bandwidth() float64 {
	if i.Period == 0 {
		return 0
	}
	return float64(i.Budget) / float64(i.Period)
}

// String implements fmt.Stringer.
func (i Interface) String() string {
	return fmt.Sprintf("(Θ=%v, Π=%v)", i.Budget, i.Period)
}

// DBF is the EDF demand bound function of a task set with implicit
// deadlines: the maximum execution demand that must complete within any
// window of length t.
func DBF(tasks []task.Params, t simtime.Duration) simtime.Duration {
	var demand simtime.Duration
	for _, p := range tasks {
		if p.Period <= 0 {
			continue
		}
		demand += simtime.Duration(int64(t)/int64(p.Period)) * p.Slice
	}
	return demand
}

// SBF is the worst-case supply bound function of the periodic resource
// (Π, Θ): the least supply guaranteed in any window of length t
// (Shin & Lee 2003).
func SBF(iface Interface, t simtime.Duration) simtime.Duration {
	pi, theta := int64(iface.Period), int64(iface.Budget)
	if theta <= 0 || pi <= 0 || theta > pi {
		return 0
	}
	x := int64(t) - (pi - theta)
	if x < 0 {
		return 0
	}
	k := x / pi
	supply := k * theta
	if rem := x - k*pi - (pi - theta); rem > 0 {
		supply += rem
	}
	return simtime.Duration(supply)
}

// testPoints returns the instants at which dbf ≤ sbf must be verified: the
// absolute deadlines (period multiples) of every task up to the analysis
// horizon.
func testPoints(tasks []task.Params, horizon simtime.Duration) []simtime.Duration {
	set := map[simtime.Duration]bool{}
	for _, p := range tasks {
		if p.Period <= 0 {
			continue
		}
		for t := p.Period; t <= horizon; t += p.Period {
			set[t] = true
		}
	}
	pts := make([]simtime.Duration, 0, len(set))
	for t := range set {
		pts = append(pts, t)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// horizon picks the analysis horizon: the task-set hyperperiod, capped to
// keep the analysis tractable (64 × the largest period at minimum).
func horizon(tasks []task.Params) simtime.Duration {
	lcm := simtime.Duration(1)
	var maxP simtime.Duration
	for _, p := range tasks {
		if p.Period > maxP {
			maxP = p.Period
		}
	}
	cap := 64 * maxP
	for _, p := range tasks {
		g := gcd(int64(lcm), int64(p.Period))
		l := int64(lcm) / g * int64(p.Period)
		if l > int64(cap) || l <= 0 {
			return cap
		}
		lcm = simtime.Duration(l)
	}
	if lcm < 2*maxP {
		lcm = 2 * maxP
	}
	return lcm
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Schedulable reports whether the EDF task set fits on the interface:
// dbf(t) ≤ sbf(t) at every deadline up to the horizon.
func Schedulable(tasks []task.Params, iface Interface) bool {
	var util float64
	for _, p := range tasks {
		util += p.Bandwidth()
	}
	if util > iface.Bandwidth()+1e-12 {
		return false
	}
	for _, t := range testPoints(tasks, horizon(tasks)) {
		if DBF(tasks, t) > SBF(iface, t) {
			return false
		}
	}
	return true
}

// MinBudget computes the smallest budget Θ for which the task set is
// schedulable on a (period, Θ) interface, or false if even Θ = period
// fails.
func MinBudget(tasks []task.Params, period simtime.Duration) (simtime.Duration, bool) {
	return MinBudgetQ(tasks, period, 1)
}

// MinBudgetQ is MinBudget with the budget rounded up to a multiple of
// quantum. CARTS computes interfaces at the resolution of its inputs
// (whole milliseconds in §4.2); passing that resolution reproduces the
// paper's interfaces, while 1ns gives the continuous optimum.
func MinBudgetQ(tasks []task.Params, period, quantum simtime.Duration) (simtime.Duration, bool) {
	if quantum <= 0 {
		quantum = 1
	}
	if !Schedulable(tasks, Interface{Period: period, Budget: period}) {
		return 0, false
	}
	lo, hi := simtime.Duration(0), period
	// Binary search: Schedulable is monotone in Θ.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if Schedulable(tasks, Interface{Period: period, Budget: mid}) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if r := hi % quantum; r != 0 {
		hi += quantum - r
	}
	if hi > period {
		hi = period
	}
	return hi, true
}

// BestInterface searches the candidate periods for the minimal-bandwidth
// interface, mirroring the trial-and-error CARTS workflow of §4.2 ("we try
// different period values and choose the one that gives the smallest
// bandwidth requirement").
func BestInterface(tasks []task.Params, candidates []simtime.Duration) (Interface, bool) {
	return BestInterfaceQ(tasks, candidates, 1)
}

// BestInterfaceQ is BestInterface with budgets quantized (see MinBudgetQ).
func BestInterfaceQ(tasks []task.Params, candidates []simtime.Duration, quantum simtime.Duration) (Interface, bool) {
	best := Interface{}
	found := false
	for _, period := range candidates {
		if period <= 0 {
			continue
		}
		theta, ok := MinBudgetQ(tasks, period, quantum)
		if !ok {
			continue
		}
		c := Interface{Period: period, Budget: theta}
		if !found || c.Bandwidth() < best.Bandwidth()-1e-12 {
			best = c
			found = true
		}
	}
	return best, found
}

// DefaultCandidates returns the period grid used to configure the
// experiments: every millisecond from 1ms up to the smallest task period.
func DefaultCandidates(tasks []task.Params) []simtime.Duration {
	minP := simtime.Infinite
	for _, p := range tasks {
		if p.Period < minP {
			minP = p.Period
		}
	}
	var out []simtime.Duration
	for p := simtime.Millis(1); p <= minP; p += simtime.Millis(1) {
		out = append(out, p)
	}
	if len(out) == 0 {
		out = append(out, minP)
	}
	return out
}

// MinProcsGEDF estimates the number of physical CPUs a set of VM-interface
// servers claims under global EDF, using the Bertogna–Cirinei–Lipari
// interference test. This is the stand-in for the DMPR claimed-CPU count
// used in §4.2: like DMPR it is sufficient (pessimistic), so it reproduces
// the claimed ≫ allocated gap of Figure 3.
func MinProcsGEDF(servers []Interface, maxProcs int) (int, bool) {
	if len(servers) == 0 {
		return 0, true
	}
	for m := 1; m <= maxProcs; m++ {
		if gedfSchedulable(servers, m) {
			return m, true
		}
	}
	return 0, false
}

// gedfSchedulable is the BCL sufficient test for implicit-deadline servers
// under gEDF on m processors.
func gedfSchedulable(servers []Interface, m int) bool {
	for k, sk := range servers {
		slack := int64(sk.Period - sk.Budget)
		if slack < 0 {
			return false
		}
		var interference int64
		for i, si := range servers {
			if i == k {
				continue
			}
			w := workload(si, sk.Period)
			if w > slack {
				w = slack + 1
			}
			interference += w
		}
		if interference > int64(m)*slack {
			return false
		}
	}
	return true
}

// workload bounds server i's execution within a window of length d.
func workload(s Interface, d simtime.Duration) int64 {
	c, t := int64(s.Budget), int64(s.Period)
	n := (int64(d) + t - c) / t
	rem := int64(d) + t - c - n*t
	if rem > c {
		rem = c
	}
	if rem < 0 {
		rem = 0
	}
	return n*c + rem
}

// PartitionedProcs counts the CPUs a first-fit-decreasing partitioning of
// the servers needs — the deployment-oriented DMPR stand-in used for the
// scalability experiment's admission (§4.5): a heavily-utilized VCPU
// server effectively claims a processor of its own.
func PartitionedProcs(servers []Interface) int {
	bws := make([]float64, len(servers))
	for i, s := range servers {
		bws[i] = s.Bandwidth()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(bws)))
	var bins []float64
	for _, bw := range bws {
		placed := false
		for i := range bins {
			if bins[i]+bw <= 1.0+1e-9 {
				bins[i] += bw
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, bw)
		}
	}
	return len(bins)
}

// VMConfig is the offline RT-Xen configuration for one VM: one interface
// per VCPU.
type VMConfig struct {
	Name   string
	VCPUs  []Interface
	TaskBW float64
}

// AllocatedCPUs sums the interface bandwidths (the "RT-Xen: Allocated"
// series of Figure 3).
func AllocatedCPUs(vms []VMConfig) float64 {
	var sum float64
	for _, vm := range vms {
		for _, i := range vm.VCPUs {
			sum += i.Bandwidth()
		}
	}
	return sum
}

// ClaimedCPUs computes the CPUs that must be set aside for the VM servers
// (the "RT-Xen: Claimed" series of Figure 3), using the partitioned
// first-fit-decreasing packing as the DMPR stand-in. GEDFClaimedCPUs gives
// the alternative interference-based estimate.
func ClaimedCPUs(vms []VMConfig, maxProcs int) (int, bool) {
	var servers []Interface
	for _, vm := range vms {
		servers = append(servers, vm.VCPUs...)
	}
	n := PartitionedProcs(servers)
	return n, n <= maxProcs
}

// GEDFClaimedCPUs computes the claimed CPUs under the BCL gEDF
// interference test — the estimate that reproduces the 15-CPU claim of
// §4.4's periodic contention experiment.
func GEDFClaimedCPUs(vms []VMConfig, maxProcs int) (int, bool) {
	var servers []Interface
	for _, vm := range vms {
		servers = append(servers, vm.VCPUs...)
	}
	return MinProcsGEDF(servers, maxProcs)
}

package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Label       string
	MissPct     float64
	P999        simtime.Duration
	OverheadPct float64
	Extra       float64 // sweep-specific metric (see each driver)
}

// RenderAblation formats a sweep.
func RenderAblation(title, extraLabel string, rows []AblationRow) string {
	t := metrics.NewTable("Config", "miss %", "p99.9", "overhead %", extraLabel)
	for _, r := range rows {
		t.AddRow(r.Label, fmt.Sprintf("%.4f", r.MissPct), r.P999.String(),
			fmt.Sprintf("%.3f", r.OverheadPct), fmt.Sprintf("%.3f", r.Extra))
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(t.String())
	return b.String()
}

// AblationMinSlice sweeps DP-WRAP's minimum global slice (250µs in §4.1)
// on a workload with sub-millisecond periods, where the clamp actually
// binds: small slices track the dense deadline lattice at a higher
// scheduling cost; large ones are cheap but overrun the deadlines
// entirely. Extra = schedule time per simulated second (ms).
func AblationMinSlice(seed uint64, duration simtime.Duration) []AblationRow {
	// Heavily loaded sub-ms tasks (≈88% + slack): quotas must land near
	// the deadlines, so the clamp's imprecision is exposed.
	params := []task.Params{
		{Slice: simtime.Micros(140), Period: simtime.Micros(300)},
		{Slice: simtime.Micros(290), Period: simtime.Micros(700)},
	}
	points := []simtime.Duration{
		simtime.Micros(50), simtime.Micros(250), simtime.Millis(1), simtime.Millis(5),
	}
	return runner.Map(0, points, func(minSlice simtime.Duration) AblationRow {
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 1
		cfg.Seed = seed
		cfg.Slack = simtime.Micros(15)
		cfg.DPWrap.MinSlice = minSlice
		sys := core.NewSystem(cfg)
		var tasks []*task.Task
		for i, p := range params {
			g := mustGuest(sys.NewGuest(fmt.Sprintf("vm%d", i), 1))
			tk := task.New(i, fmt.Sprintf("fast%d", i), task.Periodic, p)
			must(g.Register(tk))
			tasks = append(tasks, tk)
		}
		// A background hog soaks all leftover, so the RT tasks live on
		// their reserved quotas alone and the clamp's imprecision shows.
		gb := mustGuest(sys.NewWeightedGuest("bg", 1, 256))
		hog, err := workload.NewCPUHog(gb, 99, "hog")
		must(err)
		sys.Start()
		hog.Start(0)
		for _, tk := range tasks {
			guestOf(sys, tk).StartPeriodic(tk, 0)
		}
		sys.Run(duration)
		sum := workload.MissSummary(tasks)
		return AblationRow{
			Label:       fmt.Sprintf("min-slice %v", minSlice),
			MissPct:     100 * sum.Ratio(),
			OverheadPct: sys.Overhead().Percent,
			Extra:       1000 * float64(sys.Overhead().ScheduleTime) / float64(duration),
		}
	})
}

// AblationSlack sweeps the per-VCPU budget slack (§4.1 uses 500µs; §6
// notes misses "can be further reduced by increasing the scheduling
// slack"). Extra = allocated bandwidth in CPUs.
func AblationSlack(seed uint64, duration simtime.Duration) []AblationRow {
	points := []simtime.Duration{
		0, simtime.Micros(50), simtime.Micros(500), simtime.Millis(2),
	}
	return runner.Map(0, points, func(slack simtime.Duration) AblationRow {
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 15
		cfg.Seed = seed
		cfg.Slack = slack
		sys := core.NewSystem(cfg)
		// All six Table-1 groups together: ≈12.05 CPUs of tasks.
		var tasks []*task.Task
		id := 0
		for _, grp := range Table1Groups() {
			for _, p := range grp.RTAs {
				g := mustGuest(sys.NewGuest(fmt.Sprintf("vm%d", id), 1))
				tk := task.New(id, fmt.Sprintf("t%d", id), task.Periodic, p)
				must(g.Register(tk))
				tasks = append(tasks, tk)
				id++
			}
		}
		sys.Start()
		for _, tk := range tasks {
			guestOf(sys, tk).StartPeriodic(tk, 0)
		}
		sys.Run(duration)
		sum := workload.MissSummary(tasks)
		return AblationRow{
			Label:       fmt.Sprintf("slack %v", slack),
			MissPct:     100 * sum.Ratio(),
			OverheadPct: sys.Overhead().Percent,
			Extra:       sys.AllocatedBandwidth(),
		}
	})
}

// AblationServerFlavour contrasts RT-Xen's deferrable server with the
// polling server on the Figure-1 workload: budget retention is what lets a
// server absorb work that arrives after its VM went briefly idle. Extra =
// RTA2 mean response in µs.
func AblationServerFlavour(seed uint64, duration simtime.Duration) []AblationRow {
	return runner.Map(0, []bool{true, false}, func(deferrable bool) AblationRow {
		stack := core.RTXen
		if !deferrable {
			stack = core.TwoLevelEDF
		}
		cfg := core.DefaultConfig(stack)
		cfg.PCPUs = 1
		cfg.Seed = seed
		cfg.Costs = hv.CostModel{}
		sys := core.NewSystem(cfg)
		tasks := fig1Workload(sys, true)
		sys.Start()
		fig1Start(sys, tasks)
		sys.Run(duration)
		label := "polling server"
		if deferrable {
			label = "deferrable server"
		}
		return AblationRow{
			Label:       label,
			MissPct:     100 * tasks["RTA2"].Stats().MissRatio(),
			OverheadPct: sys.Overhead().Percent,
			Extra:       tasks["RTA2"].Stats().MeanResp().Micros(),
		}
	})
}

// AblationWorkConserving contrasts DP-WRAP with and without §3.4's
// leftover sharing: a memcached VM with a deliberately tight reservation
// (20µs per 500µs) on an otherwise idle host. Pure quotas pace requests at
// the fluid rate across several global slices; leftover sharing completes
// them in one. Extra = mean latency µs.
func AblationWorkConserving(seed uint64, duration simtime.Duration) []AblationRow {
	return runner.Map(0, []bool{true, false}, func(wc bool) AblationRow {
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 1
		cfg.Seed = seed
		cfg.DPWrap.NonWorkConserving = !wc
		sys := core.NewSystem(cfg)
		zero := simtime.Duration(0)
		g := mustGuest(sys.NewGuestOpts("mc", core.GuestOpts{VCPUs: 1, Slack: &zero}))
		mcCfg := workload.DefaultMemcachedConfig()
		mcCfg.Slice = simtime.Micros(20) // under-reserved on purpose
		mc, err := workload.NewMemcached(g, 0, mcCfg)
		must(err)
		sys.Start()
		mc.Start(0)
		sys.Run(duration)
		label := "work-conserving"
		if !wc {
			label = "pure DP-WRAP quotas"
		}
		return AblationRow{
			Label:       label,
			MissPct:     100 * mc.Task.Stats().MissRatio(),
			P999:        mc.Latency.Percentile(99.9),
			OverheadPct: sys.Overhead().Percent,
			Extra:       mc.Latency.Mean().Micros(),
		}
	})
}

// AblationIdleTax contrasts DP-WRAP with and without the §6 usage tax: an
// over-claiming idle VM either blocks a newcomer or is squeezed to admit
// it. Extra = newcomer admitted (1) or rejected (0).
func AblationIdleTax(seed uint64, duration simtime.Duration) []AblationRow {
	return runner.Map(0, []bool{false, true}, func(tax bool) AblationRow {
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 1
		cfg.Seed = seed
		cfg.Slack = 0
		cfg.DPWrap.IdleTax = tax
		cfg.DPWrap.TaxWindow = simtime.Millis(50)
		sys := core.NewSystem(cfg)
		gIdle := mustGuest(sys.NewGuest("overclaimer", 1))
		idler := task.New(0, "idler", task.Periodic, pp(7, 10)) // claims 70%, uses ~0
		must(gIdle.Register(idler))
		sys.Start()
		sys.Run(duration / 2)

		gNew := mustGuest(sys.NewGuest("newcomer", 1))
		busy := task.New(1, "busy", task.Periodic, pp(6, 10))
		admitted := 0.0
		var missPct float64
		if err := gNew.Register(busy); err == nil {
			admitted = 1
			gNew.StartPeriodic(busy, sys.Now())
			sys.Run(duration / 2)
			missPct = 100 * busy.Stats().MissRatio()
		} else {
			sys.Run(duration / 2)
		}
		label := "no idle tax"
		if tax {
			label = "idle tax"
		}
		return AblationRow{
			Label:       label,
			MissPct:     missPct,
			OverheadPct: sys.Overhead().Percent,
			Extra:       admitted,
		}
	})
}

// AblationGuestScheduler contrasts RTVirt's partitioned-EDF guest with
// SCHED_DEADLINE's native global EDF (the §3.2 design choice): gEDF lets
// jobs migrate between VCPUs at the cost of extra guest-level switches and
// harder VCPU parameter derivation. Extra = guest context switches per
// simulated second.
func AblationGuestScheduler(seed uint64, duration simtime.Duration) []AblationRow {
	params := []task.Params{
		pp(2, 10), pp(3, 15), pp(5, 20), pp(4, 25), pp(6, 40), pp(5, 50),
	} // ≈1.1 CPUs across 2 VCPUs
	return runner.Map(0, []bool{false, true}, func(gedf bool) AblationRow {
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 2
		cfg.Seed = seed
		sys := core.NewSystem(cfg)
		gc := guest.DefaultConfig()
		gc.GEDF = gedf
		g, err := guest.NewOS(sys.Host, "vm0", gc, 2)
		must(err)
		var tasks []*task.Task
		for i, p := range params {
			tk := task.New(i, fmt.Sprintf("t%d", i), task.Periodic, p)
			must(g.Register(tk))
			tasks = append(tasks, tk)
		}
		sys.Start()
		for _, tk := range tasks {
			g.StartPeriodic(tk, 0)
		}
		sys.Run(duration)
		sum := workload.MissSummary(tasks)
		label := "pEDF guest"
		if gedf {
			label = "gEDF guest"
		}
		return AblationRow{
			Label:       label,
			MissPct:     100 * sum.Ratio(),
			OverheadPct: sys.Overhead().Percent,
			Extra:       float64(sys.Host.Overhead.GuestSwitches) / duration.Seconds(),
		}
	})
}

package check

import (
	"strings"
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/rtxen"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

var bgTaskID int

// newBackgroundTask registers an always-hungry background task on g.
func newBackgroundTask(t *testing.T, g *guest.OS) *task.Task {
	t.Helper()
	bgTaskID++
	tk := task.NewBackground(bgTaskID, "bg")
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	return tk
}

// Every oracle must actually fire: each test below feeds it a hand-built
// trace stream or a deliberately-broken scheduler view that violates its
// invariant, and asserts the violation is reported.

func TestBudgetOracleFlagsOverdraw(t *testing.T) {
	o := NewBudgetOracle()
	// A clean depletion (Arg 0) must stay silent.
	o.Consume(trace.Event{At: 5, Kind: trace.Deplete, VM: "vm", VCPU: 0})
	if len(o.Violations()) != 0 {
		t.Fatalf("clean Deplete flagged: %v", o.Violations())
	}
	o.Consume(trace.Event{At: 7, Kind: trace.Deplete, VM: "vm", VCPU: 1, PCPU: 2, Arg: 250})
	vs := o.Violations()
	if len(vs) != 1 {
		t.Fatalf("overdraw not flagged: %v", vs)
	}
	if vs[0].At != 7 || !strings.Contains(vs[0].Detail, "overdrew") {
		t.Fatalf("unexpected violation: %+v", vs[0])
	}
}

func TestBudgetOracleCapsRetention(t *testing.T) {
	o := NewBudgetOracle()
	for i := 0; i < maxViolations+10; i++ {
		o.Consume(trace.Event{At: simtime.Time(i), Kind: trace.Deplete, Arg: 1})
	}
	if len(o.Violations()) != maxViolations {
		t.Fatalf("retention cap broken: %d violations", len(o.Violations()))
	}
	if o.Dropped() != 10 {
		t.Fatalf("dropped count = %d, want 10", o.Dropped())
	}
}

func TestMissOracleFlagsConfirmedAdmittedMiss(t *testing.T) {
	o := NewMissOracle([]string{"vm/rt"})
	// A miss before the admission verdict is not covered by the guarantee.
	o.Consume(trace.Event{At: 1, Kind: trace.JobMiss, VM: "vm", Task: "rt", Arg: 100})
	if len(o.Violations()) != 0 {
		t.Fatalf("unconfirmed miss flagged: %v", o.Violations())
	}
	o.Consume(trace.Event{At: 2, Kind: trace.Admit, VM: "vm", Task: "rt"})
	// An unwatched task's miss stays silent even when admitted.
	o.Consume(trace.Event{At: 3, Kind: trace.Admit, VM: "vm", Task: "other"})
	o.Consume(trace.Event{At: 4, Kind: trace.JobMiss, VM: "vm", Task: "other"})
	if len(o.Violations()) != 0 {
		t.Fatalf("unwatched miss flagged: %v", o.Violations())
	}
	o.Consume(trace.Event{At: 5, Kind: trace.JobMiss, VM: "vm", Task: "rt", Arg: 777})
	vs := o.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "despite confirmed admission") {
		t.Fatalf("confirmed miss not flagged: %v", vs)
	}
	// A Reject disarms the guarantee.
	o.Consume(trace.Event{At: 6, Kind: trace.Reject, VM: "vm", Task: "rt"})
	o.Consume(trace.Event{At: 7, Kind: trace.JobMiss, VM: "vm", Task: "rt"})
	if len(o.Violations()) != 1 {
		t.Fatalf("disarmed miss flagged: %v", o.Violations())
	}
}

func TestParityOracleFlagsDrift(t *testing.T) {
	sys := core.NewSystem(func() core.Config {
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 1
		return cfg
	}())
	o := NewParityOracle(sys.Host)
	sys.Host.TraceTo(o)
	// A Migrate event with no matching Overhead.Migrations charge breaks
	// parity; so does a hypercall event without a counter bump.
	sys.Host.Emit(trace.Event{At: 1, Kind: trace.Migrate, VM: "vm"})
	sys.Host.Emit(trace.Event{At: 2, Kind: trace.HypercallIncBW, VM: "vm"})
	o.Finish(3)
	vs := o.Violations()
	if len(vs) != 2 {
		t.Fatalf("parity drift not flagged twice: %v", vs)
	}
}

func TestBandwidthOracleGapMode(t *testing.T) {
	cfg := core.DefaultConfig(core.RTXen)
	cfg.PCPUs = 1
	sys := core.NewSystem(cfg)
	res := hv.Reservation{Budget: simtime.Millis(2), Period: simtime.Millis(10)}
	if _, err := sys.NewServerGuest("vm", []hv.Reservation{res}, 256); err != nil {
		t.Fatal(err)
	}
	o := NewBandwidthOracle(sys.Host)
	sys.Host.TraceTo(o)

	// First grant establishes the baseline; an exact refill is legal.
	o.Consume(trace.Event{At: simtime.Time(simtime.Millis(10)), Kind: trace.Replenish,
		VM: "vm", VCPU: 0, Arg: int64(res.Budget)})
	o.Consume(trace.Event{At: simtime.Time(simtime.Millis(20)), Kind: trace.Replenish,
		VM: "vm", VCPU: 0, Arg: int64(res.Budget)})
	if len(o.Violations()) != 0 {
		t.Fatalf("legal refills flagged: %v", o.Violations())
	}
	// A grant above bandwidth × gap is a conservation breach.
	o.Consume(trace.Event{At: simtime.Time(simtime.Millis(30)), Kind: trace.Replenish,
		VM: "vm", VCPU: 0, Arg: int64(res.Budget) + 5000})
	if len(o.Violations()) != 1 {
		t.Fatalf("over-grant not flagged: %v", o.Violations())
	}
	// Same-instant double replenish is also a breach.
	o.Consume(trace.Event{At: simtime.Time(simtime.Millis(30)), Kind: trace.Replenish,
		VM: "vm", VCPU: 0, Arg: 1})
	if len(o.Violations()) != 2 {
		t.Fatalf("double replenish not flagged: %v", o.Violations())
	}
	// Grants to VCPUs the host does not know are flagged, not dropped.
	o.Consume(trace.Event{At: 1, Kind: trace.Replenish, VM: "ghost", VCPU: 3, Arg: 1})
	if len(o.Violations()) != 3 {
		t.Fatalf("unknown-VCPU grant not flagged: %v", o.Violations())
	}
}

func TestBandwidthOracleSliceMode(t *testing.T) {
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 1
	sys := core.NewSystem(cfg)
	res := hv.Reservation{Budget: simtime.Millis(2), Period: simtime.Millis(10)}
	if _, err := sys.NewServerGuest("vm", []hv.Reservation{res}, 256); err != nil {
		t.Fatal(err)
	}
	o := NewBandwidthOracle(sys.Host)
	sys.Host.TraceTo(o)
	// Before Start the current slice is [0, 0): a grant claiming to cover
	// it must be ≤ 1ns of rounding, and one at any other instant is
	// outside its slice start.
	o.Consume(trace.Event{At: 0, Kind: trace.Replenish, VM: "vm", VCPU: 0, Arg: 500})
	vs := o.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "limit") {
		t.Fatalf("over-slice grant not flagged: %v", vs)
	}
	o.Consume(trace.Event{At: 5, Kind: trace.Replenish, VM: "vm", VCPU: 0, Arg: 1})
	vs = o.Violations()
	if len(vs) != 2 || !strings.Contains(vs[1].Detail, "outside its slice") {
		t.Fatalf("off-slice grant not flagged: %v", vs)
	}
}

// fakeAdmitter is a host-admission view that over-commits.
type fakeAdmitter struct{ bw, cap float64 }

func (f fakeAdmitter) AdmittedBandwidth() float64 { return f.bw }
func (f fakeAdmitter) Capacity() float64          { return f.cap }

func TestAdmissionOracleFlagsHostOvercommit(t *testing.T) {
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 2
	sys := core.NewSystem(cfg)
	o := NewAdmissionOracle(sys)
	// Substitute a lying admission view: 2.5 CPUs admitted on 2.
	o.host = fakeAdmitter{bw: 2.5, cap: 2}
	o.Consume(trace.Event{At: 9, Kind: trace.Admit, VM: "vm"})
	vs := o.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "over capacity") {
		t.Fatalf("host overcommit not flagged: %v", vs)
	}
	o.Finish(10)
	if len(o.Violations()) != 2 {
		t.Fatalf("Finish audit missing: %v", o.Violations())
	}
}

// invertedServerState wraps the real rtxen accounting but reverses the
// deadline order, making the scheduler's correct EDF picks look like
// systematic inversions — the broken-scheduler double for the EDF oracle.
type invertedServerState struct{ inner *rtxen.Scheduler }

func (r invertedServerState) ServerState(v *hv.VCPU, now simtime.Time) (simtime.Duration, simtime.Time, bool) {
	b, dl, ok := r.inner.ServerState(v, now)
	return b, simtime.Time(1<<50) - dl, ok
}

// buildTwoServerRTXen builds a 1-PCPU RT-Xen system with two
// always-runnable servers (background demand), so exactly one runs and
// one waits at all times while both hold budget.
func buildTwoServerRTXen(t *testing.T) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(core.RTXen)
	cfg.PCPUs = 1
	sys := core.NewSystem(cfg)
	// Distinct periods keep the two servers' deadlines distinct, so the
	// EDF order between them is always strict.
	servers := map[string]hv.Reservation{
		"vm-a": {Budget: simtime.Millis(4), Period: simtime.Millis(10)},
		"vm-b": {Budget: simtime.Millis(8), Period: simtime.Millis(20)},
	}
	for _, name := range []string{"vm-a", "vm-b"} {
		g, err := sys.NewServerGuest(name, []hv.Reservation{servers[name]}, 256)
		if err != nil {
			t.Fatal(err)
		}
		tk := newBackgroundTask(t, g)
		sys.Sim.At(0, func(simtime.Time) { g.ReleaseJob(tk, simtime.Duration(1<<60)) })
	}
	return sys
}

func TestEDFOracleSilentOnCorrectScheduler(t *testing.T) {
	sys := buildTwoServerRTXen(t)
	rs := sys.Host.Scheduler().(*rtxen.Scheduler)
	o := NewEDFOracle(sys.Host, rs)
	sys.Host.TraceTo(o)
	sys.Start()
	sys.Run(simtime.Millis(200))
	o.Finish(sys.Sim.Now())
	if vs := o.Violations(); len(vs) != 0 {
		t.Fatalf("correct rtxen flagged: %v", vs)
	}
}

func TestEDFOracleFlagsInvertedScheduler(t *testing.T) {
	sys := buildTwoServerRTXen(t)
	rs := sys.Host.Scheduler().(*rtxen.Scheduler)
	o := NewEDFOracle(sys.Host, invertedServerState{rs})
	sys.Host.TraceTo(o)
	sys.Start()
	sys.Run(simtime.Millis(200))
	o.Finish(sys.Sim.Now())
	vs := o.Violations()
	if len(vs) == 0 {
		t.Fatal("inverted-EDF view not flagged")
	}
	if !strings.Contains(vs[0].Detail, "EDF inversion") {
		t.Fatalf("unexpected violation: %+v", vs[0])
	}
}

func TestDispatchDigestSeparatesStreams(t *testing.T) {
	a, b := NewDispatchDigest(), NewDispatchDigest()
	ev := trace.Event{At: 10, Kind: trace.Dispatch, PCPU: 0, VM: "vm", VCPU: 0}
	a.Consume(ev)
	b.Consume(ev)
	if !a.Equal(b) {
		t.Fatal("identical streams digest differently")
	}
	// Non-dispatch events are ignored.
	b.Consume(trace.Event{At: 11, Kind: trace.Replenish, VM: "vm"})
	if !a.Equal(b) {
		t.Fatal("non-dispatch event changed the digest")
	}
	b.Consume(trace.Event{At: 12, Kind: trace.Dispatch, PCPU: 1, VM: "vm", VCPU: 0})
	if a.Equal(b) {
		t.Fatal("divergent streams digest equal")
	}
}

// Package hv models the virtual machine monitor (VMM) of a multiprocessor
// host: physical CPUs, VMs, virtual CPUs, the host-scheduler interface, and
// the paravirtual cross-layer channel (the sched_rtvirt() hypercall and the
// shared-memory deadline slots) described in §3 of the RTVirt paper.
//
// The kernel is a discrete-event model. It is exact: CPU time consumed by
// jobs, scheduler invocations, context switches, and migrations is
// accounted in integer nanoseconds, so deadline misses and overhead
// percentages are deterministic functions of the scheduling decisions.
package hv

import (
	"errors"
	"fmt"

	"rtvirt/internal/clone"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Reservation is a host-level CPU reservation for a VCPU: Budget units of
// CPU time in every Period. It is the unit of cross-layer communication.
type Reservation struct {
	Budget simtime.Duration
	Period simtime.Duration
}

// Bandwidth reports the fraction of one PCPU the reservation needs.
func (r Reservation) Bandwidth() float64 {
	if r.Period == 0 {
		return 0
	}
	return float64(r.Budget) / float64(r.Period)
}

// Valid reports whether the reservation is well-formed.
func (r Reservation) Valid() bool {
	return r.Budget >= 0 && r.Period > 0 && r.Budget <= r.Period
}

// String implements fmt.Stringer.
func (r Reservation) String() string {
	return fmt.Sprintf("(budget=%v, period=%v)", r.Budget, r.Period)
}

// Overhead accumulates the scheduler-overhead measurements reported in
// Table 6 of the paper.
type Overhead struct {
	ScheduleCalls   uint64
	ScheduleTime    simtime.Duration
	CtxSwitches     uint64
	CtxSwitchTime   simtime.Duration
	Migrations      uint64
	MigrationTime   simtime.Duration
	Hypercalls      uint64
	HypercallTime   simtime.Duration
	GuestSwitches   uint64
	GuestSwitchTime simtime.Duration
	ShmWrites       uint64
}

// Total reports the total overhead time (schedule + context switches +
// migrations + hypercalls + guest switches).
func (o Overhead) Total() simtime.Duration {
	return o.ScheduleTime + o.CtxSwitchTime + o.MigrationTime + o.HypercallTime + o.GuestSwitchTime
}

// Percent reports overhead as a percentage of span × pcpus of CPU time.
func (o Overhead) Percent(span simtime.Duration, pcpus int) float64 {
	if span <= 0 || pcpus <= 0 {
		return 0
	}
	return 100 * float64(o.Total()) / (float64(span) * float64(pcpus))
}

// GuestDriver is the guest OS as seen by the VMM: it owns the VM's task
// queues and picks the job a dispatched VCPU executes.
type GuestDriver interface {
	// PickJob returns the job VCPU v should execute at now, or nil when the
	// VCPU has no runnable work (the VCPU then blocks until woken).
	PickJob(v *VCPU, now simtime.Time) *task.Job
	// JobCompleted notifies the guest that j finished at now. The kernel
	// has already recorded completion in the task's stats.
	JobCompleted(v *VCPU, j *task.Job, now simtime.Time)
	// ForkDriver deep-copies the driver for a forked simulation. It must be
	// memo-aware (return the existing clone if ctx already has one, Put
	// before filling reference fields) and may resolve the cloned VM,
	// VCPUs, host, and simulator through ctx — the host clones all of them
	// before calling ForkDriver.
	ForkDriver(ctx *clone.Ctx) GuestDriver
}

// Decision is a host scheduler's answer to "what should this PCPU run".
type Decision struct {
	VCPU   *VCPU            // nil to leave the PCPU idle
	RunFor simtime.Duration // how long until the scheduler wants control back
	Work   int              // entities examined; drives the overhead model
}

// HostScheduler is the VMM scheduling algorithm. Implementations:
// dpwrap (RTVirt), rtxen (gEDF + deferrable server), credit (Xen default).
//
// A scheduler is also a sim.Handler: its timers (slice boundaries, budget
// replenishments, accounting ticks) are typed payload events addressed to
// its handler ID, and ForkHandler deep-copies its runqueues, budgets, and
// per-VCPU scheduling state (VCPU.SchedData) for a forked simulation,
// resolving cloned VCPUs and the cloned host through the fork's clone.Ctx.
type HostScheduler interface {
	sim.Handler
	Name() string
	// Attach wires the scheduler to the host. Called once from NewHost.
	Attach(h *Host)
	// Start installs the scheduler's recurring events (period boundaries,
	// ticks). Called from Host.Start.
	Start(now simtime.Time)
	// AdmitVCPU performs admission control for a new VCPU with its current
	// reservation (possibly zero). An error rejects the VCPU.
	AdmitVCPU(v *VCPU) error
	// RemoveVCPU withdraws a VCPU from scheduling.
	RemoveVCPU(v *VCPU, now simtime.Time)
	// UpdateVCPU re-runs admission for a changed reservation; on error the
	// previous reservation remains in force.
	UpdateVCPU(v *VCPU, res Reservation, now simtime.Time) error
	// VCPUWake notifies that v became runnable.
	VCPUWake(v *VCPU, now simtime.Time)
	// VCPUIdle notifies that v blocked (its guest has no runnable work).
	VCPUIdle(v *VCPU, now simtime.Time)
	// Schedule picks what PCPU p should run next.
	Schedule(p *PCPU, now simtime.Time) Decision
}

// HypercallFlag selects the sched_rtvirt() operation (§3.2).
type HypercallFlag int

// Hypercall flags.
const (
	IncBW    HypercallFlag = iota // request more bandwidth for one VCPU
	DecBW                         // release bandwidth from one VCPU
	IncDecBW                      // atomically move bandwidth between two VCPUs
)

// String implements fmt.Stringer.
func (f HypercallFlag) String() string {
	switch f {
	case IncBW:
		return "INC_BW"
	case DecBW:
		return "DEC_BW"
	case IncDecBW:
		return "INC_DEC_BW"
	default:
		return fmt.Sprintf("HypercallFlag(%d)", int(f))
	}
}

// Hypercall is one sched_rtvirt() invocation: the guest communicates a
// VCPU's new reservation to the host scheduler.
type Hypercall struct {
	Flag HypercallFlag
	VCPU *VCPU
	Res  Reservation
	// Dec names the VCPU whose bandwidth shrinks in an INC_DEC_BW call.
	Dec    *VCPU
	DecRes Reservation
}

// CrossLayer is implemented by host schedulers that understand the
// sched_rtvirt() hypercall (the RTVirt DP-WRAP scheduler).
type CrossLayer interface {
	HandleHypercall(hc Hypercall, now simtime.Time) error
}

// SlotWatcher is implemented by host schedulers that react to guest
// shared-memory writes (DP-WRAP shortens an in-flight global slice when a
// guest publishes a deadline earlier than the slice end). Implementations
// must not re-dispatch synchronously — a write can happen inside the
// dispatch path — so they defer any replanning to a same-instant event.
type SlotWatcher interface {
	SlotUpdated(v *VCPU, now simtime.Time)
}

// ErrNoCrossLayer is returned when sched_rtvirt() is invoked on a host
// whose scheduler has no cross-layer support (e.g. Credit, RT-Xen).
var ErrNoCrossLayer = errors.New("hv: host scheduler does not implement sched_rtvirt")

// ErrAdmission is wrapped by admission-control rejections.
var ErrAdmission = errors.New("admission control rejected request")

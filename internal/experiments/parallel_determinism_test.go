package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
)

// withWorkers runs fn with the runner's global default worker count pinned
// to n, restoring the GOMAXPROCS default afterwards.
func withWorkers(n int, fn func()) {
	runner.SetDefault(n)
	defer runner.SetDefault(0)
	fn()
}

// TestFigure3ParallelDeterminism checks the run-isolation contract end to
// end: the full group × framework grid must produce byte-identical rows
// whether the simulations run sequentially or on eight workers.
func TestFigure3ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cfg := DefaultFigure3Config()
	cfg.Duration = simtime.Seconds(5)

	cfg.Parallel = 1
	seq := Figure3(cfg)
	cfg.Parallel = 8
	par := Figure3(cfg)

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Figure3 rows differ between -parallel 1 and 8:\nseq: %#v\npar: %#v", seq, par)
	}
	if a, b := RenderFigure3(seq), RenderFigure3(par); a != b {
		t.Fatalf("rendered Figure 3 differs:\n%s\nvs\n%s", a, b)
	}
}

// TestRobustnessParallelDeterminism fans three seeds out over eight workers
// and expects the exact sequential fold.
func TestRobustnessParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	var seq, par []RobustnessResult
	withWorkers(1, func() { seq = Robustness(3, 5*simtime.Second) })
	withWorkers(8, func() { par = Robustness(3, 5*simtime.Second) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Robustness differs between 1 and 8 workers:\nseq: %#v\npar: %#v", seq, par)
	}
	if a, b := RenderRobustness(seq), RenderRobustness(par); a != b {
		t.Fatalf("rendered robustness differs:\n%s\nvs\n%s", a, b)
	}
}

// TestAblationSlackParallelDeterminism covers the sweeps that take their
// worker count from the global default rather than a config field.
func TestAblationSlackParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	var seq, par []AblationRow
	withWorkers(1, func() { seq = AblationSlack(1, 2*simtime.Second) })
	withWorkers(8, func() { par = AblationSlack(1, 2*simtime.Second) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("AblationSlack differs between 1 and 8 workers:\nseq: %#v\npar: %#v", seq, par)
	}
	if a, b := fmt.Sprintf("%v", seq), fmt.Sprintf("%v", par); a != b {
		t.Fatalf("formatted AblationSlack differs:\n%s\nvs\n%s", a, b)
	}
}

// Command videostream runs a video streaming service on RTVirt (§4.3):
// four VMs serve transcoding requests whose frame rates — and therefore
// CPU needs (Table 3) — change as streams start and stop. The guests
// renegotiate their reservations online through the cross-layer hypercall,
// so the host only ever reserves what the current streams need while
// every frame deadline holds.
package main

import (
	"fmt"
	"log"

	"rtvirt"
)

func main() {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 4
	sys := rtvirt.NewSystem(cfg)

	// Two VCPUs to start with; RTVirt hot-plugs more when the streams
	// outgrow them (§3.2).
	vm, err := sys.NewGuestOpts("streaming-vm", rtvirt.GuestOpts{VCPUs: 2, MaxVCPUs: 4})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()

	fmt.Println("Table 3 — VLC transcoding profiles:")
	for _, p := range rtvirt.VideoProfiles() {
		fmt.Printf("  %2d fps: needs %4.1f%% CPU, RTA %v\n", p.FPS, 100*p.Bandwidth, p.Params)
	}
	fmt.Println()

	// Phase 1: two standard-definition streams.
	s24, err := rtvirt.NewVideoStream(vm, 0, 24)
	if err != nil {
		log.Fatal(err)
	}
	s30, err := rtvirt.NewVideoStream(vm, 1, 30)
	if err != nil {
		log.Fatal(err)
	}
	s24.App.Start(sys.Now())
	s30.App.Start(sys.Now())
	sys.Run(20 * rtvirt.Second)
	fmt.Printf("t=%3.0fs  24fps+30fps streaming, VM reserves %.1f%% CPU\n",
		sys.Now().Seconds(), 100*vm.AllocatedBandwidth())

	// Phase 2: a 60fps stream joins — the guest hypercalls for more
	// bandwidth before admitting the new transcoding thread.
	s60, err := rtvirt.NewVideoStream(vm, 2, 60)
	if err != nil {
		log.Fatal(err)
	}
	s60.App.Start(sys.Now())
	sys.Run(20 * rtvirt.Second)
	fmt.Printf("t=%3.0fs  +60fps stream,          VM reserves %.1f%% CPU (VCPUs: %d, hot-plugged)\n",
		sys.Now().Seconds(), 100*vm.AllocatedBandwidth(), vm.NumVCPUs())

	// Phase 3: the 24fps stream ends; its bandwidth is returned.
	if err := s24.App.Stop(); err != nil {
		log.Fatal(err)
	}
	sys.Run(20 * rtvirt.Second)
	fmt.Printf("t=%3.0fs  24fps stream stopped,   VM reserves %.1f%% CPU\n",
		sys.Now().Seconds(), 100*vm.AllocatedBandwidth())

	fmt.Println()
	for _, s := range []*rtvirt.VideoStream{s24, s30, s60} {
		st := s.App.Task.Stats()
		fmt.Printf("%-14s frames=%4d missed=%d (%.3f%%)\n",
			s.App.Task.Name, st.Released, st.Missed, 100*st.MissRatio())
	}
}

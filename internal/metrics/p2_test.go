package metrics

import (
	"math"
	"testing"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

func TestP2AgainstExact(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rng := sim.NewRNG(5)
		est := NewP2Quantile(q)
		var exact LatencyRecorder
		for i := 0; i < 50000; i++ {
			// Log-normal-ish latencies: exp of a normal.
			v := simtime.Duration(50e3 * math.Exp(0.5*rng.NormFloat64()))
			est.Add(v)
			exact.Add(v)
		}
		want := float64(exact.Percentile(q * 100))
		got := float64(est.Value())
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q=%g: P² %v vs exact %v (%.1f%% off)", q,
				simtime.Duration(got), simtime.Duration(want), 100*rel)
		}
		if est.Count() != 50000 {
			t.Fatalf("count = %d", est.Count())
		}
	}
}

func TestP2UniformDistribution(t *testing.T) {
	rng := sim.NewRNG(9)
	est := NewP2Quantile(0.95)
	for i := 0; i < 100000; i++ {
		est.Add(simtime.Duration(rng.Int63n(1_000_000)))
	}
	got := float64(est.Value())
	if got < 930_000 || got > 970_000 {
		t.Fatalf("p95 of U[0,1e6) = %v, want ≈950000", got)
	}
}

func TestP2SmallSamples(t *testing.T) {
	est := NewP2Quantile(0.9)
	if est.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	est.Add(10)
	est.Add(30)
	est.Add(20)
	// Fallback: max of what was seen.
	if est.Value() != 30 {
		t.Fatalf("small-sample value = %v, want 30", est.Value())
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewP2Quantile(%g) did not panic", bad)
				}
			}()
			NewP2Quantile(bad)
		}()
	}
}

func TestP2Monotone(t *testing.T) {
	// Feeding a sorted ramp, the estimate must land inside the data range
	// and near the target.
	est := NewP2Quantile(0.999)
	for i := 1; i <= 10000; i++ {
		est.Add(simtime.Duration(i))
	}
	got := float64(est.Value())
	if got < 9900 || got > 10000 {
		t.Fatalf("p99.9 of 1..10000 = %v", got)
	}
}

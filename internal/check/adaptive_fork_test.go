package check_test

import (
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/core"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
)

// adaptiveScenario is a contended RTVirt world where two adaptive
// controllers actuate in opposite directions: "grow" is an open-loop
// sporadic stream whose declared slice is far below the queueing it
// suffers behind the heavy periodic neighbour (INC_BW pressure), and
// "shrink" is generously over-provisioned against a high hysteresis
// floor (DEC_BW pressure).
func adaptiveScenario() scenario.Scenario {
	return scenario.Scenario{
		Stack:   "rtvirt",
		PCPUs:   1,
		Seconds: 3,
		Seed:    13,
		VMs: []scenario.VM{
			{
				Name: "heavy",
				Tasks: []scenario.TaskSpec{
					{Name: "bulk", SliceUS: 4000, PeriodUS: 10000},
				},
			},
			{
				Name: "svc",
				Tasks: []scenario.TaskSpec{
					{
						Name: "grow", Kind: "sporadic", SliceUS: 100, PeriodUS: 2000, RateHz: 500,
						Arrivals: &scenario.ArrivalSpec{Poisson: &scenario.PoissonSpec{RateHz: 300}},
						Adaptive: &scenario.AdaptiveSpec{TargetUS: 500, WindowMS: 20, MaxSliceUS: 800},
					},
					{
						Name: "shrink", SliceUS: 1500, PeriodUS: 10000,
						Adaptive: &scenario.AdaptiveSpec{
							TargetUS: 8000, WindowMS: 20, MinSliceUS: 300, LowFraction: 0.9,
						},
					},
				},
			},
		},
	}
}

// TestAdaptiveControllerForkIdentity forks a world mid-run while both
// adaptive controllers are live and verifies bit-identical replay: the
// controllers' ForkHandler must carry the window clock, hysteresis and
// backoff state, and re-attach the clone to the forked host's trace bus,
// so the fork keeps issuing the same INC/DEC_BW stream. The full oracle
// suite stays armed throughout.
func TestAdaptiveControllerForkIdentity(t *testing.T) {
	var suite *check.Suite
	w, err := scenario.Build(adaptiveScenario(), scenario.Options{
		OnSystem: func(sys *core.System) { suite = check.Attach(sys, check.Opts{}) },
	})
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	if n := len(w.Controllers()); n != 2 {
		t.Fatalf("Controllers() = %d, want 2", n)
	}
	w.Start()
	w.Sys.Run(simtime.Second)

	// The fork must happen while retuning is actually in flight —
	// otherwise the test collapses to the plain fork-identity case.
	grow, shrink := w.Controllers()[0], w.Controllers()[1]
	if grow.Incs == 0 {
		t.Errorf("grow controller issued no INC_BW before the fork (windows %d, rejects %d)",
			grow.Windows, grow.Rejects)
	}
	if shrink.Decs == 0 {
		t.Errorf("shrink controller issued no DEC_BW before the fork (windows %d)", shrink.Windows)
	}

	v, err := check.ForkIdentity(w.Sys, simtime.Second)
	if err != nil {
		t.Fatalf("ForkIdentity: %v", err)
	}
	if v != nil {
		t.Fatalf("fork diverged with live adaptive controllers: %v", v)
	}
	w.Sys.Host.Sync()
	for _, v := range suite.Finish() {
		t.Errorf("violation: %v", v)
	}
	if grow.Incs+grow.Rejects+shrink.Decs == 0 {
		t.Error("controllers idle across the whole run; fork probe was vacuous")
	}
}

package rtxen

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
)

// ForkHandler implements sim.Handler: deep-copy every deferrable-server
// state (budget, deadline, pending replenishment timer, heap slot, charging
// PCPU) onto the cloned VCPUs and rebuild the runqueue with remapped
// pointers. heapIdx is carried verbatim, so the heap layout — and with it
// the modeled scan ranks — is preserved exactly.
func (s *Scheduler) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(s); ok {
		return n.(*Scheduler)
	}
	ns := &Scheduler{
		cfg:      s.cfg,
		h:        clone.Get(ctx, s.h),
		id:       s.id,
		bgCursor: s.bgCursor,
		started:  s.started,
		byID:     make(map[int32]*hv.VCPU, len(s.byID)),
	}
	ctx.Put(s, ns)
	for id, v := range s.byID {
		nv := clone.Get(ctx, v)
		nst := &serverState{}
		*nst = *state(v)
		nst.replEv = eventq.CloneHandle(ctx, state(v).replEv)
		nv.SchedData = nst
		ns.byID[id] = nv
	}
	ns.runq.v = make([]*hv.VCPU, len(s.runq.v))
	for i, v := range s.runq.v {
		ns.runq.v[i] = clone.Get(ctx, v)
	}
	return ns
}

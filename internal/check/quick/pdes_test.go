package quick

import (
	"math/rand"
	"strings"
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/eventq"
)

// TestPDESIdentityOnGeneratedWorlds runs the sharded identity oracle
// directly on a few generated scenarios under both backends.
func TestPDESIdentityOnGeneratedWorlds(t *testing.T) {
	for caseN := 0; caseN < 3; caseN++ {
		seed := splitmix64(7, uint64(caseN))
		sc := Generate(rand.New(rand.NewSource(int64(seed))))
		sc.Seconds = 1
		sc.Seed = seed
		for _, bk := range AllBackends {
			restore := pinBackend(bk)
			v, err := pdesIdentity(sc, seed, DefaultShards)
			restore()
			if err != nil {
				t.Logf("case %d %s: skipped (%v)", caseN, bk, err)
				continue
			}
			if v != nil {
				t.Errorf("case %d %s: %v", caseN, bk, v)
			}
		}
	}
}

// TestRunIncludesPDESAxis checks that the harness drives the sharded
// oracle by default and that SkipPDES removes exactly those runs.
func TestRunIncludesPDESAxis(t *testing.T) {
	cfg := Config{
		Seed: 11, N: 2, Seconds: 1,
		Stacks:   []core.Stack{core.RTVirt},
		Backends: []eventq.Backend{eventq.BackendHeap},
		SkipFork: true,
	}
	with := Run(cfg)
	cfg.SkipPDES = true
	without := Run(cfg)
	if got := with.Runs - without.Runs; got != cfg.N*len(cfg.Backends) {
		t.Errorf("PDES axis added %d runs, want %d", got, cfg.N*len(cfg.Backends))
	}
	for _, f := range with.Failures {
		if f.Stack == "pdes" {
			t.Errorf("generated world broke PDES identity: %+v", f.Violations)
		}
	}
}

// TestBuildPDESReplicates pins the replica topology: every admitted VM
// appears once per host and sporadic tasks get a remote client.
func TestBuildPDESReplicates(t *testing.T) {
	seed := splitmix64(3, 0)
	sc := Generate(rand.New(rand.NewSource(int64(seed))))
	sc.Seconds = 1
	c, err := buildPDES(sc, seed)
	if err != nil {
		t.Skipf("world rejected: %v", err)
	}
	deps := c.Deployments()
	if len(deps) == 0 || len(deps)%pdesHosts != 0 {
		t.Fatalf("deployments %d not a multiple of %d hosts", len(deps), pdesHosts)
	}
	for _, d := range deps {
		if !strings.Contains(d.Spec.Name, "-h") {
			t.Errorf("deployment %q missing host suffix", d.Spec.Name)
		}
	}
}

func TestFirstDiffLine(t *testing.T) {
	if got := firstDiffLine("a\nb\nc", "a\nB\nc"); !strings.Contains(got, "line 2") {
		t.Errorf("firstDiffLine = %q, want line 2", got)
	}
	if got := firstDiffLine("a\nb", "a\nb\nc"); !strings.Contains(got, "lengths differ") {
		t.Errorf("firstDiffLine = %q, want length mismatch", got)
	}
}

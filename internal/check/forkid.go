package check

import (
	"fmt"

	"rtvirt/internal/core"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// DispatchDigest folds the dispatch stream into an FNV-1a hash over the
// fields two runs of the same world must agree on — when, which PCPU,
// which virtual CPU. It mirrors the digest experiments.Bisect probes
// with, so a mismatch found here can be handed to the bisector to pin the
// first divergent dispatch.
type DispatchDigest struct {
	hash uint64
	n    int
}

// NewDispatchDigest creates an empty digest.
func NewDispatchDigest() *DispatchDigest {
	return &DispatchDigest{hash: 14695981039346656037}
}

func (d *DispatchDigest) mix(b byte) { d.hash = (d.hash ^ uint64(b)) * 1099511628211 }

// Consume implements trace.Sink.
func (d *DispatchDigest) Consume(ev trace.Event) {
	if ev.Kind != trace.Dispatch {
		return
	}
	d.n++
	for _, v := range [3]uint64{uint64(ev.At), uint64(int64(ev.PCPU)), uint64(int64(ev.VCPU))} {
		for i := 0; i < 8; i++ {
			d.mix(byte(v >> (8 * i)))
		}
	}
	for i := 0; i < len(ev.VM); i++ {
		d.mix(ev.VM[i])
	}
	d.mix(0xff)
}

// Sum returns the digest value.
func (d *DispatchDigest) Sum() uint64 { return d.hash }

// Events returns the number of dispatches folded in.
func (d *DispatchDigest) Events() int { return d.n }

// Equal reports whether two digests saw identical dispatch streams.
func (d *DispatchDigest) Equal(o *DispatchDigest) bool {
	return d.hash == o.hash && d.n == o.n
}

// ForkIdentity is the fork bit-identity oracle: it forks sys at its
// current instant, runs the original and the fork for span each, and
// compares their dispatch streams, which PR-4's state model guarantees to
// be identical. The fork starts with a fresh disabled bus, so only the
// digest attached here observes it; the original keeps its existing sinks
// (any armed Suite continues auditing the remainder of the run). Returns
// a Violation on divergence, nil when identical; the error reports a
// fork that could not be taken (pending closure events).
func ForkIdentity(sys *core.System, span simtime.Duration) (*Violation, error) {
	forked, _, err := sys.Fork()
	if err != nil {
		return nil, fmt.Errorf("check: fork identity: %w", err)
	}
	at := sys.Sim.Now()
	orig, twin := NewDispatchDigest(), NewDispatchDigest()
	sys.Host.TraceTo(orig)
	forked.Host.TraceTo(twin)
	sys.Run(span)
	forked.Run(span)
	if !orig.Equal(twin) {
		return &Violation{
			At:     at,
			Oracle: "fork-identity",
			Detail: fmt.Sprintf("fork at %v diverged over %v: original %d dispatches (digest %016x), fork %d (digest %016x)",
				at, span, orig.Events(), orig.Sum(), twin.Events(), twin.Sum()),
		}, nil
	}
	return nil, nil
}

var _ trace.Sink = (*DispatchDigest)(nil)

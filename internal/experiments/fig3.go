package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/csa"
	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// Figure3Row is one group's bandwidth accounting (the bars of Figure 3)
// plus the timeliness outcome of both frameworks.
type Figure3Row struct {
	Group string
	// RTAReq is the summed task bandwidth (the "RTA-Req" bar), in CPUs.
	RTAReq float64
	// RTXenAllocated is the summed CSA interface bandwidth.
	RTXenAllocated float64
	// RTXenClaimed is the CPUs the analysis sets aside (DMPR stand-in).
	RTXenClaimed float64
	// RTVirtAllocated is the summed RTVirt reservation bandwidth.
	RTVirtAllocated float64

	RTXenMisses  metrics.MissSummary
	RTVirtMisses metrics.MissSummary

	// Interfaces records the per-RTA CSA interfaces (Table 2 for NH-Dec).
	Interfaces []csa.Interface
	RTVirtRes  []float64 // per-VM RTVirt reservation bandwidth
}

// Figure3Config tunes the periodic-group experiment.
type Figure3Config struct {
	Seed     uint64
	Duration simtime.Duration // 100 s in the paper
	PCPUs    int
	Sporadic bool // run the §4.2 sporadic variant instead of periodic
	Requests int  // sporadic requests per RTA (100 in the paper)
	// Parallel is the worker count for the group × framework fan-out;
	// <= 0 uses runner.Default(). Results are identical at any setting.
	Parallel int
	// Costs overrides the platform cost model (nil = hv.DefaultCosts, the
	// paper's flat §4 constants). The fidelity ablation passes
	// hv.CalibratedCosts here.
	Costs *hv.CostModel
}

// DefaultFigure3Config mirrors §4.2.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{Seed: 1, Duration: simtime.Seconds(100), PCPUs: 15, Requests: 100}
}

// Figure3 runs every Table-1 group under both frameworks and reports the
// bandwidth bars of Figure 3 (and §4.2's sporadic variant when
// cfg.Sporadic is set). The group × framework grid — 12 fully independent
// simulations — is fanned out over cfg.Parallel workers; rows come back in
// group order regardless of completion order.
func Figure3(cfg Figure3Config) []Figure3Row {
	groups := Table1Groups()
	arms := make([]fig3Arm, 0, 2*len(groups))
	for _, g := range groups {
		arms = append(arms, fig3Arm{group: g, rtxen: true}, fig3Arm{group: g, rtxen: false})
	}
	parts := runner.Map(cfg.Parallel, arms, func(a fig3Arm) Figure3Row {
		return runGroupArm(a.group, cfg, a.rtxen)
	})
	rows := make([]Figure3Row, len(groups))
	for i := range groups {
		rows[i] = mergeFig3Arms(parts[2*i], parts[2*i+1])
	}
	return rows
}

// Table2 reproduces Table 2: the NH-Dec group's per-RTA configuration
// under RT-Xen (CSA interfaces) and RTVirt (slack-padded reservations).
func Table2(cfg Figure3Config) Figure3Row {
	for _, group := range Table1Groups() {
		if group.Name == "NH-Dec" {
			return runGroup(group, cfg)
		}
	}
	panic("experiments: NH-Dec group missing")
}

// fig3Arm identifies one independent simulation of the Figure-3 grid.
type fig3Arm struct {
	group RTAGroup
	rtxen bool
}

func runGroup(group RTAGroup, cfg Figure3Config) Figure3Row {
	parts := runner.Map(cfg.Parallel, []bool{true, false}, func(rtxen bool) Figure3Row {
		return runGroupArm(group, cfg, rtxen)
	})
	return mergeFig3Arms(parts[0], parts[1])
}

// mergeFig3Arms combines the RT-Xen arm's row (which carries the group
// identity and offline analysis) with the RTVirt arm's fields.
func mergeFig3Arms(xen, rtv Figure3Row) Figure3Row {
	xen.RTVirtAllocated = rtv.RTVirtAllocated
	xen.RTVirtMisses = rtv.RTVirtMisses
	xen.RTVirtRes = rtv.RTVirtRes
	return xen
}

// runGroupArm runs one framework's simulation for one group. The RT-Xen
// arm also carries the group bookkeeping (bandwidth request, offline CSA)
// so mergeFig3Arms can assemble a complete row from the two halves.
func runGroupArm(group RTAGroup, cfg Figure3Config, rtxen bool) Figure3Row {
	row := Figure3Row{Group: group.Name, RTAReq: group.Bandwidth()}
	if !rtxen {
		sys := newSys(core.RTVirt, cfg)
		tasks := deployGroup(sys, group, nil, cfg)
		for _, g := range sys.Guests() {
			row.RTVirtRes = append(row.RTVirtRes, g.AllocatedBandwidth())
			row.RTVirtAllocated += g.AllocatedBandwidth()
		}
		sys.Run(cfg.Duration + simtime.Seconds(5))
		row.RTVirtMisses = workload.MissSummary(tasks)
		return row
	}

	// Offline CSA for the RT-Xen arm: one interface per (single-RTA) VM.
	var vmConfigs []csa.VMConfig
	for i, p := range group.RTAs {
		// CARTS works at the resolution of its inputs: whole milliseconds.
		iface, ok := csa.BestInterfaceQ([]task.Params{p},
			csa.DefaultCandidates([]task.Params{p}), ms(1))
		if !ok {
			panic(fmt.Sprintf("experiments: no CSA interface for %v", p))
		}
		row.Interfaces = append(row.Interfaces, iface)
		vmConfigs = append(vmConfigs, csa.VMConfig{
			Name:   fmt.Sprintf("vm%d", i),
			VCPUs:  []csa.Interface{iface},
			TaskBW: p.Bandwidth(),
		})
	}
	row.RTXenAllocated = csa.AllocatedCPUs(vmConfigs)
	if claimed, ok := csa.ClaimedCPUs(vmConfigs, 64); ok {
		row.RTXenClaimed = float64(claimed)
	}

	sys := newSys(core.RTXen, cfg)
	tasks := deployGroup(sys, group, row.Interfaces, cfg)
	sys.Run(cfg.Duration + simtime.Seconds(5))
	row.RTXenMisses = workload.MissSummary(tasks)
	return row
}

func newSys(stack core.Stack, cfg Figure3Config) *core.System {
	c := core.DefaultConfig(stack)
	c.PCPUs = cfg.PCPUs
	c.Seed = cfg.Seed
	if cfg.Costs != nil {
		c.Costs = *cfg.Costs
	}
	return core.NewSystem(c)
}

// deployGroup creates one VM per RTA (as in §4.2) and starts the workload:
// periodic rt-app tasks, or sporadic TCP-triggered tasks when
// cfg.Sporadic is set. ifaces configures the RT-Xen servers (nil = RTVirt
// cross-layer mode).
func deployGroup(sys *core.System, group RTAGroup, ifaces []csa.Interface, cfg Figure3Config) []*task.Task {
	var tasks []*task.Task
	kind := task.Periodic
	if cfg.Sporadic {
		kind = task.Sporadic
	}
	for i, p := range group.RTAs {
		name := fmt.Sprintf("vm%d", i)
		var g *guest.OS
		if ifaces != nil {
			iface := ifaces[i]
			g = mustGuest(sys.NewServerGuest(name,
				[]hv.Reservation{{Budget: iface.Budget, Period: iface.Period}}, 256))
		} else {
			g = mustGuest(sys.NewGuest(name, 1))
		}
		t := task.New(i, fmt.Sprintf("%s-rta%d", group.Name, i), kind, p)
		must(g.Register(t))
		tasks = append(tasks, t)
	}
	sys.Start()
	for _, t := range tasks {
		g := guestOf(sys, t)
		if cfg.Sporadic {
			sc := workload.NewSporadicClientFor(g, t,
				dist.Uniform{Lo: ms(100), Hi: simtime.Seconds(1)}, cfg.Requests)
			sc.Start(0)
		} else {
			g.StartPeriodic(t, 0)
		}
	}
	return tasks
}

// Render formats the Figure-3 rows like the paper's bar chart, in percent
// of one CPU.
func RenderFigure3(rows []Figure3Row) string {
	t := metrics.NewTable("Group", "RTA-Req %", "RT-Xen Claimed %", "RT-Xen Alloc %", "RTVirt %",
		"RT-Xen miss %", "RTVirt miss %")
	for _, r := range rows {
		t.AddRow(r.Group,
			fmt.Sprintf("%.1f", 100*r.RTAReq),
			fmt.Sprintf("%.1f", 100*r.RTXenClaimed),
			fmt.Sprintf("%.1f", 100*r.RTXenAllocated),
			fmt.Sprintf("%.1f", 100*r.RTVirtAllocated),
			fmt.Sprintf("%.3f", 100*r.RTXenMisses.Ratio()),
			fmt.Sprintf("%.3f", 100*r.RTVirtMisses.Ratio()))
	}
	var b strings.Builder
	b.WriteString("Figure 3 — CPU bandwidth per RTA group (percent of one CPU)\n")
	b.WriteString(t.String())
	return b.String()
}

// RenderTable2 formats the NH-Dec configuration table.
func RenderTable2(r Figure3Row) string {
	group := Table1Groups()[4] // NH-Dec
	t := metrics.NewTable("RTA (s,p)", "RT-Xen VM (Θ,Π)", "RT-Xen bw", "RTVirt VM bw")
	for i, p := range group.RTAs {
		t.AddRow(p.String(), r.Interfaces[i].String(),
			fmt.Sprintf("%.3f", r.Interfaces[i].Bandwidth()),
			fmt.Sprintf("%.3f", r.RTVirtRes[i]))
	}
	var b strings.Builder
	b.WriteString("Table 2 — NH-Dec VM configurations\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Totals: RTAs %.2f CPUs, RT-Xen %.2f CPUs, RTVirt %.2f CPUs\n",
		r.RTAReq, r.RTXenAllocated, r.RTVirtAllocated)
	return b.String()
}

package cluster

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func vmSpec(name string, sliceMS, periodMS int64) VMSpec {
	return VMSpec{
		Name:  name,
		VCPUs: 1,
		Tasks: []TaskSpec{{
			Name:   name + "-rta",
			Kind:   task.Periodic,
			Params: task.Params{Slice: ms(sliceMS), Period: ms(periodMS)},
		}},
	}
}

func TestPlacementPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		// After placing 0.5 on host0, where does the next 0.3 go?
		wantSame bool
	}{
		{FirstFit, true},  // host0 still fits
		{BestFit, true},   // host0 has least free space and fits
		{WorstFit, false}, // host1 has more room
	} {
		cfg := DefaultConfig()
		cfg.Policy = tc.policy
		c := New(cfg)
		cfg.PCPUs = 4
		d1, err := c.Place(vmSpec("a", 20, 10*4)) // 0.5
		if err != nil {
			t.Fatalf("%v: %v", tc.policy, err)
		}
		d2, err := c.Place(vmSpec("b", 12, 40)) // 0.3
		if err != nil {
			t.Fatalf("%v: %v", tc.policy, err)
		}
		same := d1.Host == d2.Host
		if same != tc.wantSame {
			t.Errorf("%v: same-host = %v, want %v", tc.policy, same, tc.wantSame)
		}
	}
}

func TestPlaceRejectsWhenFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 2
	cfg.PCPUs = 1
	c := New(cfg)
	for i := 0; i < 2; i++ {
		if _, err := c.Place(vmSpec(fmt.Sprintf("big%d", i), 9, 10)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Place(vmSpec("extra", 5, 10))
	if !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("err = %v, want ErrNoHostFits", err)
	}
}

func TestPlacedVMsMeetDeadlines(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	var vms []*Deployment
	for i := 0; i < 6; i++ {
		d, err := c.Place(vmSpec(fmt.Sprintf("vm%d", i), 4, 10)) // 0.4 each
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, d)
	}
	c.Start()
	c.Run(5 * simtime.Second)
	for _, d := range vms {
		for _, tk := range d.Tasks() {
			if st := tk.Stats(); st.Missed != 0 {
				t.Errorf("%s/%s missed %d", d.Spec.Name, tk.Name, st.Missed)
			}
		}
	}
}

func TestLiveMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = FirstFit
	c := New(cfg)
	d, err := c.Place(vmSpec("mover", 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	src := d.Host
	c.Start()
	c.Run(2 * simtime.Second)

	target, err := c.Migrate("mover", nil)
	if err != nil {
		t.Fatal(err)
	}
	if target == src {
		t.Fatal("migrated to the source host")
	}
	// During the blackout the VM holds no reservation anywhere.
	if bw := src.ReservedBandwidth(); bw > 0.01 {
		t.Fatalf("source still reserves %.3f during blackout", bw)
	}
	c.Run(2 * simtime.Second)
	if d.Host != target || d.Migrations != 1 {
		t.Fatalf("migration not completed: host=%v migrations=%d", d.Host.Name, d.Migrations)
	}
	if d.BlackoutTotal < cfg.MigrationDowntime {
		t.Fatalf("blackout %v below base downtime", d.BlackoutTotal)
	}
	// The VM runs again on the target: fresh releases complete.
	tk := d.Tasks()[0]
	before := tk.Stats().Completed
	c.Run(simtime.Second)
	if tk.Stats().Completed <= before {
		t.Fatal("no progress after migration")
	}
	// The §6 caveat: the blackout shows up as bounded misses. With a 10ms
	// period and ~58ms downtime, only the in-flight job dies (releases
	// pause during the blackout).
	if miss := tk.Stats().Missed; miss == 0 || miss > 20 {
		t.Fatalf("migration-induced misses = %d, want a small positive count", miss)
	}
}

func TestMigrateErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 2
	cfg.PCPUs = 1
	c := New(cfg)
	if _, err := c.Migrate("ghost", nil); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("err = %v", err)
	}
	d, err := c.Place(vmSpec("a", 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the other host so nothing fits.
	other := c.Hosts[0]
	if other == d.Host {
		other = c.Hosts[1]
	}
	if _, err := c.Place(vmSpec("blocker", 9, 10)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	if _, err := c.Migrate("a", other); !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("err = %v, want ErrNoHostFits", err)
	}
	if _, err := c.Migrate("a", d.Host); err == nil {
		t.Fatal("migrating to the same host accepted")
	}
}

func TestRebalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = BestFit // pack everything onto one host first
	c := New(cfg)
	for i := 0; i < 4; i++ {
		if _, err := c.Place(vmSpec(fmt.Sprintf("vm%d", i), 8, 10*4)); err != nil { // 0.2 each
			t.Fatal(err)
		}
	}
	h0, h1 := c.Hosts[0], c.Hosts[1]
	if h0.ReservedBandwidth() < 0.8 && h1.ReservedBandwidth() < 0.8 {
		t.Fatalf("best-fit did not consolidate: %.2f / %.2f",
			h0.ReservedBandwidth(), h1.ReservedBandwidth())
	}
	c.Start()
	c.Run(simtime.Second)
	moves := c.Rebalance(0.3)
	if moves == 0 {
		t.Fatal("rebalance made no moves")
	}
	c.Run(simtime.Second) // let blackouts finish
	gap := h0.ReservedBandwidth() - h1.ReservedBandwidth()
	if gap < 0 {
		gap = -gap
	}
	if gap > 0.5 {
		t.Fatalf("still unbalanced: %.2f vs %.2f", h0.ReservedBandwidth(), h1.ReservedBandwidth())
	}
}

func TestPolicyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" ||
		WorstFit.String() != "worst-fit" || Policy(9).String() == "" {
		t.Fatal("Policy.String wrong")
	}
}

func TestDuplicatePlacementRejected(t *testing.T) {
	c := New(DefaultConfig())
	if _, err := c.Place(vmSpec("dup", 1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(vmSpec("dup", 1, 10)); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// TestMigrationCleansUpSourceHost: repeated migrations must not leak VCPUs
// or VMs on the source hosts.
func TestMigrationCleansUpSourceHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = FirstFit
	c := New(cfg)
	if _, err := c.Place(vmSpec("pingpong", 3, 10)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 6; i++ {
		c.Run(simtime.Second)
		if _, err := c.Migrate("pingpong", nil); err != nil {
			t.Fatalf("migration %d: %v", i, err)
		}
		c.Run(simtime.Second)
	}
	for _, h := range c.Hosts {
		vms := len(h.Sys.Host.VMs())
		vcpus := len(h.Sys.Host.VCPUs())
		if vms > 1 || vcpus > 1 {
			t.Fatalf("%s leaks: %d VMs, %d VCPUs after 6 migrations", h.Name, vms, vcpus)
		}
	}
	d, _ := c.Lookup("pingpong")
	if d.Migrations != 6 {
		t.Fatalf("migrations = %d", d.Migrations)
	}
	// The VM still makes progress.
	tk := d.Tasks()[0]
	before := tk.Stats().Completed
	c.Run(simtime.Second)
	if tk.Stats().Completed <= before {
		t.Fatal("no progress after ping-pong migrations")
	}
}

// Property: random placement and migration churn never overcommits a host,
// never loses a VM, and every surviving VM keeps making progress.
func TestQuickClusterChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := DefaultConfig()
		cfg.Hosts = 2 + rng.Intn(2)
		cfg.PCPUs = 2
		cfg.Seed = seed
		cfg.Policy = Policy(rng.Intn(3))
		c := New(cfg)
		placed := 0
		for i := 0; i < 6; i++ {
			s := vmSpec(fmt.Sprintf("vm%d", i), 2+rng.Int63n(5), 10+rng.Int63n(20))
			if _, err := c.Place(s); err == nil {
				placed++
			}
		}
		if placed == 0 {
			return true
		}
		c.Start()
		for e := 0; e < 10; e++ {
			c.Run(simtime.Duration(200+rng.Int63n(800)) * simtime.Millisecond)
			names := c.Deployments()
			if len(names) == 0 {
				return false
			}
			d := names[rng.Intn(len(names))]
			_, _ = c.Migrate(d.Spec.Name, nil) // failures are fine
		}
		c.Run(2 * simtime.Second)
		// Invariants.
		for _, h := range c.Hosts {
			if h.ReservedBandwidth() > h.Capacity()+1e-6 {
				t.Logf("seed %d: %s overcommitted %.3f/%.1f", seed, h.Name,
					h.ReservedBandwidth(), h.Capacity())
				return false
			}
		}
		for _, d := range c.Deployments() {
			tk := d.Tasks()[0]
			before := tk.Stats().Completed
			c.Run(simtime.Second)
			if tk.Stats().Completed <= before {
				t.Logf("seed %d: %s stalled after churn", seed, d.Spec.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFailHostRecoversVMs(t *testing.T) {
	cfg := DefaultConfig() // 2×4 CPUs, worst-fit, 500ms recovery
	c := New(cfg)
	// One VM per host (worst-fit spreads them).
	d1, err := c.Place(vmSpec("a", 2, 10)) // 0.2 CPUs
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Place(vmSpec("b", 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Host == d2.Host {
		t.Fatal("worst-fit co-located the VMs")
	}
	c.Start()
	c.Run(simtime.Seconds(2))

	crashed := d1.Host
	survivor := d2.Host
	affected := c.FailHost(crashed)
	if len(affected) != 1 || affected[0] != d1 {
		t.Fatalf("affected = %v", affected)
	}
	if !crashed.Failed() || !d1.Pending() {
		t.Fatalf("failure state: host=%v vm=%v", crashed.Failed(), d1.Pending())
	}
	// Failing twice is a no-op.
	if again := c.FailHost(crashed); again != nil {
		t.Fatalf("second FailHost returned %v", again)
	}

	c.Run(simtime.Seconds(2))
	if d1.Pending() || d1.Host != survivor {
		t.Fatalf("vm a not recovered: pending=%v host=%v", d1.Pending(), d1.Host)
	}
	if d1.Failovers != 1 || d1.BlackoutTotal != cfg.RecoveryDelay {
		t.Fatalf("failover accounting: %+v", d1)
	}
	// The crash cost deadlines (the VM was dark 500ms ≈ 50 periods), but
	// it runs cleanly again on the survivor.
	tk := d1.Tasks()[0]
	missesAfterRecovery := tk.Stats().Missed
	if missesAfterRecovery == 0 {
		t.Fatal("500ms blackout caused no misses")
	}
	c.Run(simtime.Seconds(2))
	if got := tk.Stats().Missed; got != missesAfterRecovery {
		t.Fatalf("still missing after recovery: %d -> %d", missesAfterRecovery, got)
	}
	// The crashed host is empty and excluded from placement.
	if n := len(crashed.Sys.Host.VMs()); n != 0 {
		t.Fatalf("%d VMs left on the crashed host", n)
	}
	// A ~3.8-CPU VM only fits the crashed host's empty capacity; the
	// survivor (≈3.5 CPUs free) cannot take it, so placement must fail.
	probe := VMSpec{Name: "c", VCPUs: 4}
	for i := 0; i < 4; i++ {
		probe.Tasks = append(probe.Tasks, TaskSpec{
			Name: fmt.Sprintf("c-rta%d", i), Kind: task.Periodic,
			Params: task.Params{Slice: ms(19) / 2, Period: ms(10)},
		})
	}
	if _, err := c.Place(probe); err == nil {
		t.Fatal("placement used a failed host")
	}
}

func TestFailHostNoCapacityThenRestore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = FirstFit
	c := New(cfg)
	// heavySpec builds a VM from n 0.9-utilization tasks, each filling
	// most of one VCPU (0.95 reserved with the 500µs slack).
	heavySpec := func(name string, n int) VMSpec {
		s := VMSpec{Name: name, VCPUs: n}
		for i := 0; i < n; i++ {
			s.Tasks = append(s.Tasks, TaskSpec{
				Name: fmt.Sprintf("%s-rta%d", name, i), Kind: task.Periodic,
				Params: task.Params{Slice: ms(9), Period: ms(10)},
			})
		}
		return s
	}
	// host0: the 1.8-CPU victim; host1: 2.7 CPUs of filler, leaving only
	// ~1.15 CPUs of surviving capacity — not enough to recover the victim.
	big, err := c.Place(heavySpec("big", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(heavySpec("filler", 3)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Run(simtime.Seconds(1))

	h0 := c.Hosts[0]
	c.FailHost(h0)
	c.Run(simtime.Seconds(2)) // recovery delay passes, nowhere to go
	if !big.Pending() {
		t.Fatal("2.0-CPU VM recovered without capacity")
	}

	c.RestoreHost(h0)
	if big.Pending() {
		t.Fatal("restore did not retry the pending VM")
	}
	if big.Host != h0 {
		t.Fatalf("recovered on %s", big.Host.Name)
	}
	c.Run(simtime.Seconds(2))
	// Clean run after restoration: misses stop accumulating.
	tk := big.Tasks()[0]
	before := tk.Stats().Missed
	c.Run(simtime.Seconds(1))
	if got := tk.Stats().Missed; got != before {
		t.Fatalf("missing after restore: %d -> %d", before, got)
	}
	// Restoring a live host is a no-op.
	c.RestoreHost(h0)
}

func TestMigrateToHostThatFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	c := New(cfg)
	d, err := c.Place(vmSpec("a", 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Run(simtime.Seconds(1))

	src := d.Host
	var target *Host
	for _, h := range c.Hosts {
		if h != src {
			target = h
			break
		}
	}
	if _, err := c.Migrate("a", target); err != nil {
		t.Fatal(err)
	}
	// The target dies during the blackout: the VM must fall back to a
	// live host instead of deploying onto the corpse.
	c.FailHost(target)
	c.Run(simtime.Seconds(2))
	if d.Pending() {
		t.Fatal("VM stuck pending despite spare capacity")
	}
	if d.Host == target || d.Host.Failed() {
		t.Fatalf("VM landed on the failed host %s", d.Host.Name)
	}
	tk := d.Tasks()[0]
	before := tk.Stats().Missed
	c.Run(simtime.Seconds(1))
	if got := tk.Stats().Missed; got != before {
		t.Fatalf("missing after fallback: %d -> %d", before, got)
	}
}

func TestMigrateRejectsPendingVM(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	d, err := c.Place(vmSpec("a", 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Run(simtime.Seconds(1))
	c.FailHost(d.Host)
	if _, err := c.Migrate("a", nil); !errors.Is(err, ErrMigrating) {
		t.Fatalf("migrating a pending VM: err = %v", err)
	}
}

// Property: under random crashes, restores and migrations, no VM is ever
// lost — every deployment is either running on a live host or explicitly
// pending — hosts are never overcommitted, and once the cluster heals,
// every VM makes progress again.
func TestQuickFailoverChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := DefaultConfig()
		cfg.Hosts = 3
		cfg.PCPUs = 2
		cfg.Seed = seed
		cfg.Policy = Policy(rng.Intn(3))
		c := New(cfg)
		for i := 0; i < 5; i++ {
			s := vmSpec(fmt.Sprintf("vm%d", i), 1+rng.Int63n(4), 10+rng.Int63n(20))
			_, _ = c.Place(s) // rejections are fine
		}
		if len(c.Deployments()) == 0 {
			return true
		}
		c.Start()
		for e := 0; e < 12; e++ {
			c.Run(simtime.Duration(100+rng.Int63n(700)) * simtime.Millisecond)
			switch rng.Intn(3) {
			case 0:
				c.FailHost(c.Hosts[rng.Intn(len(c.Hosts))])
			case 1:
				c.RestoreHost(c.Hosts[rng.Intn(len(c.Hosts))])
			case 2:
				ds := c.Deployments()
				d := ds[rng.Intn(len(ds))]
				_, _ = c.Migrate(d.Spec.Name, nil)
			}
			// Standing invariants, checked at every step.
			for _, h := range c.Hosts {
				if h.ReservedBandwidth() > h.Capacity()+1e-6 {
					t.Logf("seed %d: %s overcommitted", seed, h.Name)
					return false
				}
				if h.Failed() && len(h.Sys.Host.VMs()) != 0 {
					t.Logf("seed %d: %d VMs on failed %s", seed,
						len(h.Sys.Host.VMs()), h.Name)
					return false
				}
			}
		}
		// Heal the cluster and let in-flight blackouts drain.
		for _, h := range c.Hosts {
			c.RestoreHost(h)
		}
		c.Run(3 * simtime.Second)
		for _, d := range c.Deployments() {
			if d.Pending() {
				t.Logf("seed %d: %s still pending after full restore", seed, d.Spec.Name)
				return false
			}
			if d.Host.Failed() {
				t.Logf("seed %d: %s lives on failed %s", seed, d.Spec.Name, d.Host.Name)
				return false
			}
			tk := d.Tasks()[0]
			before := tk.Stats().Completed
			c.Run(simtime.Second)
			if tk.Stats().Completed <= before {
				t.Logf("seed %d: %s stopped making progress", seed, d.Spec.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterDeterminism: identical seeds reproduce identical outcomes
// bit-for-bit, including through migrations, a crash and a recovery.
func TestClusterDeterminism(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig()
		cfg.Hosts = 3
		cfg.PCPUs = 2
		cfg.Seed = 42
		c := New(cfg)
		for i := 0; i < 4; i++ {
			if _, err := c.Place(vmSpec(fmt.Sprintf("vm%d", i), 3, 10)); err != nil {
				t.Fatal(err)
			}
		}
		c.Start()
		c.Run(simtime.Second)
		_, _ = c.Migrate("vm1", nil)
		c.Run(simtime.Second)
		c.FailHost(c.Hosts[0])
		c.Run(simtime.Second)
		c.RestoreHost(c.Hosts[0])
		c.Run(simtime.Second)
		out := ""
		for _, d := range c.Deployments() {
			tk := d.Tasks()[0]
			st := tk.Stats()
			out += fmt.Sprintf("%s@%s rel=%d done=%d miss=%d ab=%d mig=%d fo=%d bo=%v\n",
				d.Spec.Name, d.Host.Name, st.Released, st.Completed, st.Missed,
				st.Abandoned, d.Migrations, d.Failovers, d.BlackoutTotal)
		}
		for _, h := range c.Hosts {
			out += fmt.Sprintf("%s bw=%.6f mig=%d\n",
				h.Name, h.ReservedBandwidth(), h.Sys.Host.Overhead.Migrations)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic cluster run:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/simtime"
	"rtvirt/internal/workload"
)

func TestIOBoundContrast(t *testing.T) {
	rows := IOBound(1, 60*simtime.Second)
	var rtv, credit IORow
	for _, r := range rows {
		if r.Stack == core.RTVirt {
			rtv = r
		} else {
			credit = r
		}
	}
	slo := workload.DefaultIOAppConfig().SLO
	// RTVirt's reservation keeps the CPU phases — and thus end-to-end —
	// inside the SLO despite 19 hogs.
	if rtv.Violations != 0 {
		t.Fatalf("RTVirt violations = %d (p99.9 %v)", rtv.Violations, rtv.EndToEndP999)
	}
	if rtv.EndToEndP999 > slo {
		t.Fatalf("RTVirt end-to-end p99.9 = %v", rtv.EndToEndP999)
	}
	// Credit's CPU phases balloon under contention: tail beyond RTVirt's.
	if credit.CPUPhaseP999 <= rtv.CPUPhaseP999 {
		t.Fatalf("Credit CPU-phase p99.9 %v should exceed RTVirt %v",
			credit.CPUPhaseP999, rtv.CPUPhaseP999)
	}
	if !strings.Contains(RenderIO(rows, slo), "end-to-end") {
		t.Fatal("render broken")
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rtvirt/internal/clone"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
)

// RobustnessResult summarises a headline claim across random seeds.
type RobustnessResult struct {
	Claim string
	// Held counts seeds where the claim held, out of Runs.
	Held, Runs int
	// Values holds the per-seed headline metric (for the spread columns).
	Values []float64
	Unit   string
}

// Min/Median/Max report the spread of the headline metric.
func (r RobustnessResult) Min() float64    { return r.quantile(0) }
func (r RobustnessResult) Median() float64 { return r.quantile(0.5) }
func (r RobustnessResult) Max() float64    { return r.quantile(1) }

func (r RobustnessResult) quantile(q float64) float64 {
	if len(r.Values) == 0 {
		return 0
	}
	v := append([]float64(nil), r.Values...)
	sort.Float64s(v)
	idx := int(q * float64(len(v)-1))
	return v[idx]
}

// robustnessSeed is one seed's worth of claim outcomes, in claim order.
type robustnessSeed [5]struct {
	Held  bool
	Value float64
}

// Robustness re-runs the paper's headline experiments across seeds and
// checks that every claim survives the randomness of the workloads — the
// difference between reproducing a number and reproducing a finding.
// Seeds are independent simulations, so they fan out over runner.Default()
// workers; results are folded back in seed order.
func Robustness(runs int, duration simtime.Duration) []RobustnessResult {
	if runs <= 0 {
		runs = 5
	}
	out := []RobustnessResult{
		{Claim: "Fig1: two-level EDF misses RTA2; RTVirt does not", Unit: "baseline miss %"},
		{Claim: "Fig5a: RTVirt meets the 500µs SLO; Credit does not", Unit: "RTVirt p99.9 µs"},
		{Claim: "Fig5a: RTVirt uses ≥45% less bandwidth than RT-Xen A", Unit: "saving %"},
		{Claim: "T6: RTVirt admits all 100 RTAs at <1% overhead, below RT-Xen", Unit: "RTVirt overhead %"},
		{Claim: "Fork at t/2 replays the future bit-identically", Unit: "p99.9 µs"},
	}
	seeds := make([]uint64, runs)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	perSeed := runner.Map(0, seeds, func(seed uint64) robustnessSeed {
		return robustnessRun(seed, duration)
	})
	for _, rs := range perSeed {
		for i := range out {
			record(&out[i], rs[i].Held, rs[i].Value)
		}
	}
	return out
}

// robustnessRun evaluates every headline claim under one seed.
func robustnessRun(seed uint64, duration simtime.Duration) robustnessSeed {
	var rs robustnessSeed

	// Figure 1.
	f1 := Figure1(seed, simtime.MinDur(duration, 30*simtime.Second))
	rs[0].Held = f1.Baseline["RTA2"] > 0.25 && f1.RTVirt["RTA2"] == 0
	rs[0].Value = 100 * f1.Baseline["RTA2"]

	// Figure 5a.
	cfg5 := DefaultFigure5Config()
	cfg5.Seed = seed
	cfg5.Duration = duration
	rows := Figure5a(cfg5)
	byArm := map[Arm]Figure5Row{}
	for _, r := range rows {
		byArm[r.Arm] = r
	}
	rtv, credit, xenA := byArm[ArmRTVirt], byArm[ArmCredit], byArm[ArmRTXenA]
	rs[1].Held = rtv.SLOMet && !credit.SLOMet
	rs[1].Value = rtv.P999.Micros()
	saving := 1 - rtv.AllocatedBW/xenA.AllocatedBW
	rs[2].Held = saving >= 0.45
	rs[2].Value = 100 * saving

	// Table 6 (single-RTA scenario).
	t6cfg := DefaultTable6Config()
	t6cfg.Seed = seed
	t6cfg.Duration = simtime.MinDur(duration, 10*simtime.Second)
	t6 := Table6(SingleRTAVMs, t6cfg)
	byFw := map[string]Table6Row{}
	for _, r := range t6 {
		byFw[r.Framework] = r
	}
	rtv6, xen6 := byFw["RTVirt"], byFw["RT-Xen"]
	rs[3].Held = rtv6.RTAsAdmitted == 100 && rtv6.OverheadPct < 1.0 &&
		rtv6.OverheadPct < xen6.OverheadPct
	rs[3].Value = rtv6.OverheadPct

	// Fork determinism: the RTVirt memcached system run cold to t=D versus
	// warmed to t=D/2, forked and run out. The claim holds when both worlds
	// report the identical latency distribution — the contract every
	// warm-start sweep in this package leans on.
	d := simtime.MinDur(duration, 20*simtime.Second)
	coldSys := newMemcachedSystem(ArmRTVirt, 2, seed)
	coldMC := addMemcachedVM(coldSys, ArmRTVirt, 0, 727)
	coldSys.Start()
	coldMC.Start(0)
	coldSys.Run(d)

	warmSys := newMemcachedSystem(ArmRTVirt, 2, seed)
	warmMC := addMemcachedVM(warmSys, ArmRTVirt, 0, 727)
	warmSys.Start()
	warmMC.Start(0)
	warmSys.Run(d / 2)
	fsys, fctx, err := warmSys.Fork()
	must(err)
	fmc := clone.Get(fctx, warmMC)
	fsys.Run(d - d/2)

	rs[4].Held = fmc.Latency.Count() == coldMC.Latency.Count() &&
		fmc.Latency.Mean() == coldMC.Latency.Mean() &&
		fmc.Latency.Percentile(99.9) == coldMC.Latency.Percentile(99.9)
	rs[4].Value = fmc.Latency.Percentile(99.9).Micros()
	return rs
}

func record(r *RobustnessResult, held bool, value float64) {
	r.Runs++
	if held {
		r.Held++
	}
	r.Values = append(r.Values, value)
}

// RenderRobustness formats the summary.
func RenderRobustness(results []RobustnessResult) string {
	t := metrics.NewTable("Claim", "held", "metric", "min", "median", "max")
	for _, r := range results {
		t.AddRow(r.Claim, fmt.Sprintf("%d/%d", r.Held, r.Runs), r.Unit,
			fmt.Sprintf("%.2f", r.Min()), fmt.Sprintf("%.2f", r.Median()),
			fmt.Sprintf("%.2f", r.Max()))
	}
	var b strings.Builder
	b.WriteString("Robustness — headline claims across seeds\n")
	b.WriteString(t.String())
	return b.String()
}

package quick

import (
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/scenario"
)

// TestRenderGoldenPass pins the exact `rtvirt-bench -experiment
// quickcheck` summary for a fixed config. The harness is deterministic,
// so any drift here is a behavioural change in the generator, a stack, or
// an oracle — review it like a golden-number change.
func TestRenderGoldenPass(t *testing.T) {
	got := Run(Config{Seed: 1, N: 5, Backends: AllBackends}).Render()
	// Seed 1's case 1 packs a 1-PCPU host past dpwrap admission once the
	// slack rides on top (bandwidth 1.206 > 1.0), so its two RTVirt runs
	// skip — the harness records rejected builds rather than failing them.
	want := "quickcheck: 5 cases x 4 stacks x 2 queue backends + pdes identity x 3 group counts (seed 1)\n" +
		"runs 50, skipped 2 (admission-rejected builds), failures 0\n" +
		"PASS: every invariant held in every run"
	if got != want {
		t.Errorf("summary drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderFailure pins the failing-report shape without needing a real
// scheduler bug: a hand-built report must list each violation and point
// at the replay path.
func TestRenderFailure(t *testing.T) {
	rep := &Report{
		Seed:  9,
		Cases: 1,
		Runs:  4,
		Failures: []Failure{{
			Case:  0,
			Stack: "rt-xen",
			Seed:  9,
			Violations: []check.Violation{
				{At: 1500000, Oracle: "budget", Detail: "vm0/vcpu0 overdrew its budget by 2µs on pcpu0"},
			},
			Scenario:    scenario.Scenario{Stack: "rt-xen", PCPUs: 1, Seconds: 1, Seed: 9},
			ShrinkSteps: 3,
			ShrinkRuns:  17,
		}},
	}
	got := rep.Render()
	want := "quickcheck: 1 cases x 4 stacks (seed 9)\n" +
		"runs 4, skipped 0 (admission-rejected builds), failures 1\n" +
		"FAIL: 1 violating run(s)\n" +
		"[0] case 0 under rt-xen: 1 violation(s), shrunk in 3 step(s) over 17 run(s)\n" +
		"    [1.5ms] budget: vm0/vcpu0 overdrew its budget by 2µs on pcpu0\n" +
		"replay a repro with: rtvirt-sim <repro>.json"
	if got != want {
		t.Errorf("failure summary drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

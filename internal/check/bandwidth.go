package check

import (
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/credit"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// BandwidthOracle asserts bandwidth conservation: no Replenish grant may
// exceed the VCPU's reservation pro-rated over the span it covers.
//
// The span depends on the scheduler. DP-WRAP grants a quota per global
// slice, always emitted at the slice start while the slice bounds are
// current, so each grant is bounded by bandwidth × slice length (+1ns of
// floor-division rounding). RT-Xen replenishes to full budget once per
// server period, and a capped Credit VCPU refills cap × AccountPeriod per
// accounting period — for both, each grant is bounded by bandwidth × the
// gap since the VCPU's previous Replenish (the first grant has no gap and
// is skipped). Uncapped Credit VCPUs have no reservation semantics and
// are ignored.
//
// Deliberately NOT asserted: a cumulative per-period ledger under
// DP-WRAP. A cross-layer replan (SlotUpdated) cuts the current slice
// short and replans from now; the unelapsed remainder of the old grant is
// not refunded to the carry, so the sum of grants over a period may
// exceed the budget even though the time actually *consumed* cannot
// (BudgetOracle bounds consumption per grant).
type BandwidthOracle struct {
	recorder
	host *hv.Host
	dp   *dpwrap.Scheduler
	cr   *credit.Scheduler

	last  map[vcpuKey]simtime.Time
	byKey map[vcpuKey]*hv.VCPU
}

type vcpuKey struct {
	vm  string
	idx int
}

// NewBandwidthOracle creates the bandwidth-conservation oracle for the
// host's scheduler.
func NewBandwidthOracle(h *hv.Host) *BandwidthOracle {
	o := &BandwidthOracle{
		recorder: recorder{name: "bandwidth"},
		host:     h,
		last:     map[vcpuKey]simtime.Time{},
		byKey:    map[vcpuKey]*hv.VCPU{},
	}
	switch s := h.Scheduler().(type) {
	case *dpwrap.Scheduler:
		o.dp = s
	case *credit.Scheduler:
		o.cr = s
	}
	return o
}

// lookup resolves an event's (VM, VCPU index) to the live VCPU, refreshing
// the cache on miss (VCPUs can appear later via hotplug).
func (o *BandwidthOracle) lookup(k vcpuKey) *hv.VCPU {
	if v, ok := o.byKey[k]; ok {
		return v
	}
	for _, v := range o.host.VCPUs() {
		o.byKey[vcpuKey{v.VM.Name, v.Index}] = v
	}
	return o.byKey[k]
}

// Consume implements trace.Sink.
func (o *BandwidthOracle) Consume(ev trace.Event) {
	if ev.Kind != trace.Replenish {
		return
	}
	k := vcpuKey{ev.VM, ev.VCPU}
	v := o.lookup(k)
	if v == nil {
		o.flag(ev.At, "replenish for unknown VCPU %s/vcpu%d", ev.VM, ev.VCPU)
		return
	}
	if o.cr != nil && o.cr.CapOf(v) == 0 {
		return // uncapped Credit share: no reservation to conserve
	}
	if v.Res.Period <= 0 || v.Res.Budget <= 0 {
		o.flag(ev.At, "%s/vcpu%d granted %v with no reservation",
			ev.VM, ev.VCPU, simtime.Duration(ev.Arg))
		return
	}
	if o.dp != nil {
		start, end := o.dp.SliceBounds()
		if ev.At != start {
			o.flag(ev.At, "%s/vcpu%d quota granted outside its slice start %v", ev.VM, ev.VCPU, start)
			return
		}
		o.bound(ev, v, end.Sub(start), "slice")
		return
	}
	lastAt, seen := o.last[k]
	o.last[k] = ev.At
	if !seen {
		return // no previous grant to measure a span from
	}
	gap := ev.At.Sub(lastAt)
	if gap <= 0 {
		o.flag(ev.At, "%s/vcpu%d replenished twice at the same instant", ev.VM, ev.VCPU)
		return
	}
	o.bound(ev, v, gap, "period")
}

// bound flags a grant exceeding bandwidth × span, with 1ns of slack for
// the schedulers' floor-division rounding.
func (o *BandwidthOracle) bound(ev trace.Event, v *hv.VCPU, span simtime.Duration, what string) {
	limit := int64(span)*int64(v.Res.Budget)/int64(v.Res.Period) + 1
	if ev.Arg > limit {
		o.flag(ev.At, "%s/vcpu%d granted %v over a %v %s — limit %v for reservation %v",
			ev.VM, ev.VCPU, simtime.Duration(ev.Arg), span, what,
			simtime.Duration(limit), v.Res)
	}
}

// Finish implements Oracle.
func (o *BandwidthOracle) Finish(simtime.Time) {}

package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// depRow is the per-deployment outcome compared between a cold run and a
// forked run: placement, failover accounting and task job statistics.
type depRow struct {
	Name       string
	Host       string
	Migrations int
	Failovers  int
	Blackout   simtime.Duration
	Pending    bool
	Stats      []task.Stats
}

func clusterRows(c *Cluster) []depRow {
	var rows []depRow
	for _, d := range c.Deployments() {
		r := depRow{
			Name:       d.Spec.Name,
			Host:       d.Host.Name,
			Migrations: d.Migrations,
			Failovers:  d.Failovers,
			Blackout:   d.BlackoutTotal,
			Pending:    d.Pending(),
		}
		for _, t := range d.Tasks() {
			r.Stats = append(r.Stats, t.Stats())
		}
		rows = append(rows, r)
	}
	return rows
}

// TestClusterForkDeterminism forks a cluster while a host failure's
// recovery timer is still pending — the fork boundary cuts between the
// failure and the failover — and pins that the forked future is
// bit-identical to the uninterrupted run.
func TestClusterForkDeterminism(t *testing.T) {
	build := func() *Cluster {
		cfg := DefaultConfig()
		cfg.Hosts = 3
		cfg.PCPUs = 2
		cfg.Seed = 5
		c := New(cfg)
		for i := 0; i < 4; i++ {
			if _, err := c.Place(vmSpec(fmt.Sprintf("vm%d", i), 2, 10+int64(i)*5)); err != nil {
				t.Fatalf("place vm%d: %v", i, err)
			}
		}
		c.Start()
		c.Run(simtime.Second)
		d, ok := c.Lookup("vm0")
		if !ok {
			t.Fatal("vm0 missing")
		}
		if affected := c.FailHost(d.Host); len(affected) == 0 {
			t.Fatal("failing vm0's host affected no deployments")
		}
		// 100ms into the 500ms RecoveryDelay: the evRecover timers are
		// pending kernel events that any fork must carry across.
		c.Run(100 * simtime.Millisecond)
		return c
	}

	cold := build()
	cold.Run(2 * simtime.Second)
	want := clusterRows(cold)

	base := build()
	fc, _, err := base.Fork()
	if err != nil {
		t.Fatalf("cluster fork: %v", err)
	}
	fc.Run(2 * simtime.Second)
	got := clusterRows(fc)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("forked cluster diverges from cold run:\n fork: %+v\n cold: %+v", got, want)
	}
	failovers := 0
	for _, r := range got {
		failovers += r.Failovers
	}
	if failovers == 0 {
		t.Fatal("no failovers happened — the pending recovery timer never crossed the fork")
	}
	if now := base.Sim.Now(); now != simtime.Time(simtime.Second+100*simtime.Millisecond) {
		t.Errorf("base cluster advanced to %v by running its fork", now)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
	"rtvirt/internal/workload"
)

// IORow is one stack's outcome for the I/O-bound workload.
type IORow struct {
	Stack        core.Stack
	EndToEndP999 simtime.Duration
	CPUPhaseP999 simtime.Duration
	Violations   int
	Requests     int
}

// IOBound measures the boundary of RTVirt's guarantee (§1: the paper
// assumes CPU-bound tasks; I/O gets no timeliness promise): an RPC whose
// requests are CPU → device wait → CPU runs against CPU-bound neighbours.
// Under RTVirt the CPU phases stay bounded by the reservation, so the
// end-to-end latency degrades only by the (unmanaged) device time; under
// Credit the CPU phases themselves balloon.
func IOBound(seed uint64, duration simtime.Duration) []IORow {
	var rows []IORow
	for _, stack := range []core.Stack{core.Credit, core.RTVirt} {
		cfg := core.DefaultConfig(stack)
		cfg.PCPUs = 2
		cfg.Seed = seed
		cfg.Credit.Timeslice = simtime.Millis(1)
		cfg.Credit.Ratelimit = simtime.Micros(500)
		sys := core.NewSystem(cfg)

		var app *workload.IOApp
		ioCfg := workload.DefaultIOAppConfig()
		// Reserve at a 300µs period: each CPU phase is served within 300µs
		// even at full contention, keeping end-to-end inside the 1ms SLO
		// alongside the ~200µs device wait.
		ioCfg.ReservePeriod = simtime.Micros(300)
		if stack == core.RTVirt {
			zero := simtime.Duration(0)
			g := mustGuest(sys.NewGuestOpts("rpc", core.GuestOpts{VCPUs: 1, Slack: &zero}))
			a, err := workload.NewIOApp(g, 0, ioCfg)
			must(err)
			app = a
		} else {
			g := mustGuest(sys.NewWeightedGuest("rpc", 1, 727))
			a, err := workload.NewIOApp(g, 0, ioCfg)
			must(err)
			app = a
		}
		for i := 0; i < 19; i++ {
			g := mustGuest(sys.NewWeightedGuest(fmt.Sprintf("bg%d", i), 1, 256))
			hog, err := workload.NewCPUHog(g, 100+i, "hog")
			must(err)
			hg := hog
			sys.Sim.At(0, func(now simtime.Time) { g.ReleaseJob(hg.Task, simtime.Duration(1<<60)) })
		}
		sys.Start()
		app.Start(0)
		sys.Run(duration)
		rows = append(rows, IORow{
			Stack:        stack,
			EndToEndP999: app.Latency.Percentile(99.9),
			CPUPhaseP999: app.CPULatency.Percentile(99.9),
			Violations:   app.SLOViolations,
			Requests:     app.Latency.Count(),
		})
	}
	return rows
}

// RenderIO formats the I/O-boundary rows.
func RenderIO(rows []IORow, slo simtime.Duration) string {
	t := metrics.NewTable("Stack", "end-to-end p99.9", "CPU-phase p99.9", "SLO violations", "requests")
	for _, r := range rows {
		t.AddRow(r.Stack.String(), r.EndToEndP999.String(), r.CPUPhaseP999.String(),
			fmt.Sprintf("%d", r.Violations), r.Requests)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "I/O-bound RPC under CPU contention (end-to-end SLO %v; §1's guarantee boundary)\n", slo)
	b.WriteString(t.String())
	return b.String()
}

// Package dist provides the random-variate distributions used by the
// workload generators: inter-arrival times, service demands, and idle gaps.
//
// Every distribution draws from a sim.RNG so simulation runs stay
// deterministic. Distributions that produce durations clamp to a minimum of
// 1ns so a pathological sample can never stall the event loop.
package dist

import (
	"fmt"
	"math"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// Duration is a source of random simulated durations.
type Duration interface {
	// Sample draws the next duration.
	Sample(r *sim.RNG) simtime.Duration
	// Mean reports the distribution's expected value.
	Mean() simtime.Duration
	fmt.Stringer
}

func clamp(d simtime.Duration) simtime.Duration {
	if d < 1 {
		return 1
	}
	return d
}

// Constant always returns the same duration.
type Constant struct{ D simtime.Duration }

// Sample implements Duration.
func (c Constant) Sample(*sim.RNG) simtime.Duration { return clamp(c.D) }

// Mean implements Duration.
func (c Constant) Mean() simtime.Duration { return c.D }

func (c Constant) String() string { return fmt.Sprintf("const(%v)", c.D) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi simtime.Duration }

// Sample implements Duration.
func (u Uniform) Sample(r *sim.RNG) simtime.Duration {
	if u.Hi <= u.Lo {
		return clamp(u.Lo)
	}
	return clamp(u.Lo + simtime.Duration(r.Int63n(int64(u.Hi-u.Lo)+1)))
}

// Mean implements Duration.
func (u Uniform) Mean() simtime.Duration { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// Normal draws from a normal distribution truncated at Min (values below
// Min are clamped, preserving a mass point rather than resampling, matching
// how a real packet trace can never show a negative inter-arrival gap).
type Normal struct {
	MeanD  simtime.Duration
	Stddev simtime.Duration
	Min    simtime.Duration
}

// Sample implements Duration.
func (n Normal) Sample(r *sim.RNG) simtime.Duration {
	v := float64(n.MeanD) + r.NormFloat64()*float64(n.Stddev)
	if v < float64(n.Min) {
		v = float64(n.Min)
	}
	return clamp(simtime.Duration(v))
}

// Mean implements Duration.
func (n Normal) Mean() simtime.Duration { return n.MeanD }

func (n Normal) String() string {
	return fmt.Sprintf("normal(µ=%v,σ=%v)", n.MeanD, n.Stddev)
}

// Exponential draws from an exponential distribution with the given mean
// (Poisson arrivals).
type Exponential struct{ MeanD simtime.Duration }

// Sample implements Duration.
func (e Exponential) Sample(r *sim.RNG) simtime.Duration {
	return clamp(simtime.Duration(r.ExpFloat64() * float64(e.MeanD)))
}

// Mean implements Duration.
func (e Exponential) Mean() simtime.Duration { return e.MeanD }

func (e Exponential) String() string { return fmt.Sprintf("exp(µ=%v)", e.MeanD) }

// LogNormal draws from a log-normal distribution parameterised directly by
// the underlying normal's mu and sigma (natural log of nanoseconds). It is
// the classic model for service-time tails such as memcached request
// processing.
type LogNormal struct {
	Mu    float64 // mean of ln(duration in ns)
	Sigma float64 // stddev of ln(duration in ns)
}

// LogNormalFromMoments builds a LogNormal with the given mean and the given
// multiplicative tail spread sigma.
func LogNormalFromMoments(mean simtime.Duration, sigma float64) LogNormal {
	// mean = exp(mu + sigma^2/2)  ⇒  mu = ln(mean) − sigma²/2
	return LogNormal{Mu: math.Log(float64(mean)) - sigma*sigma/2, Sigma: sigma}
}

// Sample implements Duration.
func (l LogNormal) Sample(r *sim.RNG) simtime.Duration {
	return clamp(simtime.Duration(math.Exp(l.Mu + l.Sigma*r.NormFloat64())))
}

// Mean implements Duration.
func (l LogNormal) Mean() simtime.Duration {
	return simtime.Duration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(µ=%.3g,σ=%.3g)", l.Mu, l.Sigma)
}

// BoundedPareto draws from a Pareto distribution with shape Alpha truncated
// to [Lo, Hi], a standard heavy-tail model for bursty CPU demand.
type BoundedPareto struct {
	Lo, Hi simtime.Duration
	Alpha  float64
}

// Sample implements Duration.
func (p BoundedPareto) Sample(r *sim.RNG) simtime.Duration {
	if p.Hi <= p.Lo {
		return clamp(p.Lo)
	}
	l, h, a := float64(p.Lo), float64(p.Hi), p.Alpha
	u := r.Float64()
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*math.Pow(h, a)-u*math.Pow(l, a)-math.Pow(h, a))/(math.Pow(h, a)*math.Pow(l, a)), -1/a)
	return clamp(simtime.Duration(x))
}

// Mean implements Duration.
func (p BoundedPareto) Mean() simtime.Duration {
	l, h, a := float64(p.Lo), float64(p.Hi), p.Alpha
	if a == 1 {
		return simtime.Duration(l * h / (h - l) * math.Log(h/l))
	}
	la, ha := math.Pow(l, a), math.Pow(h, a)
	m := la / (1 - math.Pow(l/h, a)) * (a / (a - 1)) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
	_ = ha
	return simtime.Duration(m)
}

func (p BoundedPareto) String() string {
	return fmt.Sprintf("pareto(α=%.3g,[%v,%v])", p.Alpha, p.Lo, p.Hi)
}

// Mixture draws from one of several distributions with fixed weights; it
// models bimodal request populations (e.g. cheap GETs plus rare expensive
// misses).
type Mixture struct {
	Parts   []Duration
	Weights []float64 // must be same length as Parts; need not sum to 1
}

// Sample implements Duration.
func (m Mixture) Sample(r *sim.RNG) simtime.Duration {
	if len(m.Parts) == 0 {
		return 1
	}
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range m.Weights {
		if u < w {
			return m.Parts[i].Sample(r)
		}
		u -= w
	}
	return m.Parts[len(m.Parts)-1].Sample(r)
}

// Mean implements Duration.
func (m Mixture) Mean() simtime.Duration {
	var total, acc float64
	for i, w := range m.Weights {
		total += w
		acc += w * float64(m.Parts[i].Mean())
	}
	if total == 0 {
		return 0
	}
	return simtime.Duration(acc / total)
}

func (m Mixture) String() string { return fmt.Sprintf("mixture(%d parts)", len(m.Parts)) }

module rtvirt

go 1.22

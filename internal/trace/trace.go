// Package trace is the simulator's observability pipeline: typed telemetry
// events (Event) flow from every decision-making layer — the hypervisor
// kernel, the host schedulers, the guest OS — through a Bus to pluggable
// sinks (Recorder, Counts, StatsSink, JSONL). The disabled path is free:
// an empty Bus emits nothing and allocates nothing, so instrumentation
// stays wired in even under the parallel experiment runner.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"strconv"

	"rtvirt/internal/simtime"
)

// Recorder is a Sink that retains events in order up to a configurable
// cap. The zero value is ready to use with an unbounded buffer.
type Recorder struct {
	// Max bounds the number of retained events (0 = unbounded). When
	// full, further events are counted but dropped, and a single
	// narrator line is logged so truncation is never silent.
	Max int
	// Logf, when set, replaces log.Printf for the truncation notice
	// (tests use it to keep output quiet).
	Logf func(format string, args ...any)

	events  []Event
	dropped int
}

// Consume implements Sink.
func (r *Recorder) Consume(ev Event) { r.Add(ev) }

// Add appends an event, honouring the cap.
func (r *Recorder) Add(ev Event) {
	if r.Max > 0 && len(r.events) >= r.Max {
		if r.dropped == 0 {
			logf := r.Logf
			if logf == nil {
				logf = log.Printf
			}
			logf("trace: recorder cap of %d events reached at %v; further events are counted but dropped", r.Max, ev.At)
		}
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Records returns the retained events in order.
func (r *Recorder) Records() []Event { return r.events }

// Dropped reports how many events the cap discarded.
func (r *Recorder) Dropped() int { return r.dropped }

// Len reports the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Counts tallies the retained events per kind (dropped events excluded).
func (r *Recorder) Counts() Counts {
	var c Counts
	for i := range r.events {
		c.Consume(r.events[i])
	}
	return c
}

// WriteCSV emits the trace as CSV with a header row. Arg is written raw
// (kind-specific units, typically nanoseconds).
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_us", "kind", "pcpu", "vm", "vcpu", "task", "arg"}); err != nil {
		return err
	}
	for _, ev := range r.events {
		row := []string{
			strconv.FormatFloat(ev.At.Micros(), 'f', 3, 64),
			ev.Kind.String(),
			strconv.Itoa(ev.PCPU),
			ev.VM,
			strconv.Itoa(ev.VCPU),
			ev.Task,
			strconv.FormatInt(ev.Arg, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a stream written by WriteCSV back into events.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	events := make([]Event, 0, len(rows)-1)
	for _, row := range rows[1:] { // skip header
		if len(row) != 7 {
			return nil, fmt.Errorf("trace: CSV row has %d fields, want 7", len(row))
		}
		atUS, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad at_us %q: %w", row[0], err)
		}
		kind, err := KindFromString(row[1])
		if err != nil {
			return nil, err
		}
		pcpu, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: bad pcpu %q: %w", row[2], err)
		}
		vcpu, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: bad vcpu %q: %w", row[4], err)
		}
		arg, err := strconv.ParseInt(row[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad arg %q: %w", row[6], err)
		}
		events = append(events, Event{
			At:   simtime.Time(int64(atUS * 1e3)),
			Kind: kind,
			PCPU: pcpu,
			VM:   row[3],
			VCPU: vcpu,
			Task: row[5],
			Arg:  arg,
		})
	}
	return events, nil
}

// WriteJSON emits the trace as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.events)
}

// ReadJSON parses a stream written by WriteJSON.
func ReadJSON(rd io.Reader) ([]Event, error) {
	var events []Event
	if err := json.NewDecoder(rd).Decode(&events); err != nil {
		return nil, err
	}
	return events, nil
}

// Timeline renders a coarse textual Gantt chart of PCPU occupancy between
// from and to, with one row per bucket — handy for eyeballing schedules in
// tests and examples.
func (r *Recorder) Timeline(pcpus int, from, to simtime.Time, buckets int) string {
	if buckets <= 0 || to <= from {
		return ""
	}
	// occupant[pcpu][bucket] = VM name observed last in the bucket.
	occ := make([][]string, pcpus)
	for i := range occ {
		occ[i] = make([]string, buckets)
	}
	span := to.Sub(from)
	cur := make([]string, pcpus)
	idx := 0
	for b := 0; b < buckets; b++ {
		bucketEnd := from.Add(simtime.ScaleDuration(span, int64(b+1), int64(buckets)))
		for idx < len(r.events) && r.events[idx].At < bucketEnd {
			ev := r.events[idx]
			if ev.Kind == Dispatch && ev.PCPU >= 0 && ev.PCPU < pcpus {
				cur[ev.PCPU] = ev.VM
			}
			idx++
		}
		for p := 0; p < pcpus; p++ {
			occ[p][b] = cur[p]
		}
	}
	out := ""
	for p := 0; p < pcpus; p++ {
		out += fmt.Sprintf("pcpu%-2d |", p)
		for b := 0; b < buckets; b++ {
			name := occ[p][b]
			switch {
			case name == "":
				out += "."
			default:
				out += string(name[len(name)-1])
			}
		}
		out += "|\n"
	}
	return out
}

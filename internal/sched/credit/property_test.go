package credit

import (
	"testing"
	"testing/quick"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Property: a capped VCPU never consumes more than cap × elapsed (+ one
// accounting period of slop), even on an otherwise idle host.
func TestQuickCapEnforcement(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		capPct := 10 + rng.Int63n(60) // 10–70%
		s := sim.New(seed)
		cfg := DefaultConfig()
		cfg.TickCost = 0
		h := hv.NewHost(s, 1, New(cfg), hv.CostModel{})
		gc := guest.Config{CrossLayer: false, VCPUCapacity: 1e9}
		g, err := guest.NewOS(h, "capped", gc, 0)
		if err != nil {
			return false
		}
		capRes := hv.Reservation{
			Budget: simtime.Duration(capPct) * simtime.Millis(10) / 100,
			Period: simtime.Millis(10),
		}
		if _, err := g.AddVCPU(capRes, 256); err != nil {
			return false
		}
		hog := task.NewBackground(0, "hog")
		if err := g.Register(hog); err != nil {
			return false
		}
		h.Start()
		s.After(0, func(now simtime.Time) { g.ReleaseJob(hog, simtime.Seconds(1000)) })
		dur := simtime.Seconds(3)
		s.RunFor(dur)
		h.Sync()
		run := g.VM().TotalRun()
		entitled := simtime.Duration(float64(dur) * float64(capPct) / 100)
		return run <= entitled+cfg.AccountPeriod
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: weights partition a saturated host proportionally (within
// 15%), for random weight pairs.
func TestQuickWeightProportionality(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		wA := 100 + rng.Intn(900)
		wB := 100 + rng.Intn(900)
		s := sim.New(seed)
		cfg := DefaultConfig()
		cfg.TickCost = 0
		h := hv.NewHost(s, 1, New(cfg), hv.CostModel{})
		mk := func(name string, w int) *guest.OS {
			gc := guest.Config{CrossLayer: false, VCPUCapacity: 1e9}
			g, err := guest.NewOS(h, name, gc, 0)
			if err != nil {
				return nil
			}
			if _, err := g.AddVCPU(hv.Reservation{Period: simtime.Millis(10)}, w); err != nil {
				return nil
			}
			return g
		}
		gA, gB := mk("a", wA), mk("b", wB)
		if gA == nil || gB == nil {
			return false
		}
		ha := task.NewBackground(0, "a")
		hb := task.NewBackground(1, "b")
		if gA.Register(ha) != nil || gB.Register(hb) != nil {
			return false
		}
		h.Start()
		s.After(0, func(now simtime.Time) { gA.ReleaseJob(ha, simtime.Seconds(1000)) })
		s.After(0, func(now simtime.Time) { gB.ReleaseJob(hb, simtime.Seconds(1000)) })
		s.RunFor(simtime.Seconds(10))
		h.Sync()
		runA, runB := float64(gA.VM().TotalRun()), float64(gB.VM().TotalRun())
		if runA == 0 || runB == 0 {
			return false
		}
		got := runA / runB
		want := float64(wA) / float64(wB)
		return got > want*0.85 && got < want*1.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"fmt"
	"sort"

	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
)

// This file implements sharded (conservative-PDES) execution: a ShardSet
// holds one Simulator per shard (logical process — in the cluster model,
// one per host), and advances them concurrently in lookahead windows.
//
// The synchronization protocol is classic conservative null-message-free
// windowing. Let T be the globally earliest pending event time across all
// shards and L the lookahead (the minimum cross-shard latency — in the
// cluster, the 19µs network delay). Every shard may safely fire its events
// in [T, T+L): any cross-shard message emitted inside the window is sent
// at some t ≥ T with delay ≥ L, so it arrives at t+L ≥ T+L — beyond the
// window — and can be delivered at the next barrier without ever rewinding
// a shard. Cross-shard sends go through Shard.PostRemote into a per-shard
// outbox, and the coordinator drains all outboxes between windows.
//
// Determinism does not depend on how shards are grouped onto executors:
// each shard's intra-window execution is single-threaded on its own queue,
// window boundaries are a pure function of the global event population,
// and the barrier drain orders messages by (arrival time, source shard,
// emission counter) before assigning fresh seqs in the target queue. Runs
// with 1, 2, 4, or 8 executor groups are therefore bit-identical — the
// golden the sharded cluster tests pin.

// Shard is one logical process of a sharded simulation: its own Simulator
// (clock, queue, RNG, handlers) plus an outbox of cross-shard messages
// awaiting the next barrier.
type Shard struct {
	id  int
	set *ShardSet
	sim *Simulator

	outbox []remoteMsg
	// edgeSeq[to] counts messages emitted on the (this shard → to) edge —
	// a per-edge lamport-style counter that makes the barrier drain order
	// (and hence the fresh seqs assigned in the target queue) independent
	// of executor grouping.
	edgeSeq []uint64
}

// remoteMsg is one buffered cross-shard message.
type remoteMsg struct {
	at   simtime.Time
	from int32
	to   int32
	n    uint64 // per-(from,to)-edge emission counter
	p    Payload
}

// ShardSet owns the shards of one sharded simulation and coordinates
// their windowed execution.
type ShardSet struct {
	lookahead simtime.Duration
	shards    []*Shard

	windows uint64
	inRun   bool
	// scratch is the reusable barrier-drain buffer.
	scratch []remoteMsg
}

// NewShardSet creates an empty shard set with the given lookahead — the
// minimum cross-shard latency, which must be positive (a zero lookahead
// admits no concurrency: every window would be empty).
func NewShardSet(lookahead simtime.Duration) *ShardSet {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard set needs a positive lookahead, got %v", lookahead))
	}
	return &ShardSet{lookahead: lookahead}
}

// Lookahead reports the conservative window width.
func (ss *ShardSet) Lookahead() simtime.Duration { return ss.lookahead }

// NewShard adds a shard running on a fresh Simulator seeded with seed
// (backend: DefaultBackend). Shards must all be added before the first
// Run; their creation order defines their IDs.
func (ss *ShardSet) NewShard(seed uint64) *Shard {
	return ss.NewShardWithBackend(seed, DefaultBackend)
}

// NewShardWithBackend is NewShard with an explicitly pinned event-queue
// backend.
func (ss *ShardSet) NewShardWithBackend(seed uint64, b eventq.Backend) *Shard {
	if ss.inRun {
		panic("sim: NewShard during RunUntil")
	}
	sh := &Shard{id: len(ss.shards), set: ss, sim: NewWithBackend(seed, b)}
	ss.shards = append(ss.shards, sh)
	for _, s := range ss.shards {
		for len(s.edgeSeq) < len(ss.shards) {
			s.edgeSeq = append(s.edgeSeq, 0)
		}
	}
	return sh
}

// Shards returns the shards in ID order.
func (ss *ShardSet) Shards() []*Shard { return ss.shards }

// Windows reports how many conservative windows have executed.
func (ss *ShardSet) Windows() uint64 { return ss.windows }

// EventsFired sums the event counters across shards.
func (ss *ShardSet) EventsFired() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		n += sh.sim.EventsFired()
	}
	return n
}

// Now reports the earliest shard clock — the global simulation time.
func (ss *ShardSet) Now() simtime.Time {
	if len(ss.shards) == 0 {
		return 0
	}
	min := ss.shards[0].sim.Now()
	for _, sh := range ss.shards[1:] {
		if t := sh.sim.Now(); t < min {
			min = t
		}
	}
	return min
}

// ID reports the shard's position in its set.
func (sh *Shard) ID() int { return sh.id }

// Sim exposes the shard's simulator. Handlers running on it may touch
// only state owned by this shard; anything cross-shard goes through
// PostRemote.
func (sh *Shard) Sim() *Simulator { return sh.sim }

// PostRemote buffers a typed event for delivery into another shard's
// queue at the absolute instant at. The arrival must respect the set's
// lookahead (at ≥ now + lookahead): that bound is exactly what lets the
// target shard run a full window without waiting for this one. Messages
// are held in the sender's outbox and merged into the target queue at the
// next barrier, in an order independent of executor grouping. Posting to
// the shard itself panics — local work uses PostAt and needs no lookahead.
func (sh *Shard) PostRemote(to *Shard, at simtime.Time, p Payload) {
	if to == nil || to.set != sh.set {
		panic("sim: PostRemote to a shard of a different set")
	}
	if to == sh {
		panic("sim: PostRemote to own shard (use PostAt)")
	}
	if min := sh.sim.Now().Add(sh.set.lookahead); at < min {
		panic(fmt.Sprintf("sim: PostRemote at %v violates lookahead %v (now %v, earliest legal %v)",
			at, sh.set.lookahead, sh.sim.Now(), min))
	}
	sh.edgeSeq[to.id]++
	sh.outbox = append(sh.outbox, remoteMsg{
		at:   at,
		from: int32(sh.id),
		to:   int32(to.id),
		n:    sh.edgeSeq[to.id],
		p:    p,
	})
}

// nextTime returns the earliest pending event time across all shards.
func (ss *ShardSet) nextTime() simtime.Time {
	next := simtime.Never
	for _, sh := range ss.shards {
		if t := sh.sim.q.PeekTime(); t < next {
			next = t
		}
	}
	return next
}

// drain merges every outbox into the target queues. The sort key
// (arrival, source, target, edge counter) is unique per message and
// depends only on simulation state, so the fresh seqs SchedulePayload
// assigns in each target queue — and with them the FIFO order among
// same-instant events — are identical however the previous window's
// shards were grouped onto executors.
func (ss *ShardSet) drain() {
	batch := ss.scratch[:0]
	for _, sh := range ss.shards {
		batch = append(batch, sh.outbox...)
		sh.outbox = sh.outbox[:0]
	}
	if len(batch) > 1 {
		sort.Slice(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.from != b.from {
				return a.from < b.from
			}
			if a.to != b.to {
				return a.to < b.to
			}
			return a.n < b.n
		})
	}
	for _, m := range batch {
		ss.shards[m.to].sim.PostAt(m.at, m.p)
	}
	ss.scratch = batch[:0]
}

// runWindow fires the simulator's events with time < w (and ≤ end),
// without advancing the clock past the last fired event.
func (s *Simulator) runWindow(w, end simtime.Time) {
	for {
		next := s.q.PeekTime()
		if next >= w || next > end {
			// simtime.Never compares greater than any real instant, so an
			// empty queue lands here too.
			break
		}
		s.fireAt(next)
	}
}

// RunUntil advances every shard to end under conservative windowed
// synchronization, using up to groups concurrent executors (1 = fully
// sequential, same results). Shards are assigned to executors round-robin
// by ID; the assignment is pure bookkeeping — outputs are bit-identical
// for every group count.
func (ss *ShardSet) RunUntil(end simtime.Time, groups int) {
	if len(ss.shards) == 0 {
		return
	}
	if ss.inRun {
		panic("sim: ShardSet.RunUntil re-entered")
	}
	ss.inRun = true
	defer func() { ss.inRun = false }()

	if groups < 1 {
		groups = 1
	}
	if groups > len(ss.shards) {
		groups = len(ss.shards)
	}
	var pool *runner.Pool
	if groups > 1 {
		pool = runner.NewPool(groups)
		defer pool.Close()
	}

	for {
		// Barrier point: all shards idle. Deliver cross-shard messages
		// emitted in the previous window (and any buffered before the run).
		ss.drain()
		next := ss.nextTime()
		if next > end {
			break
		}
		w := next.Add(ss.lookahead)
		ss.windows++

		// Count shards with work in this window; a window with one active
		// shard (or one executor) runs inline — no handoff cost.
		active, last := 0, -1
		for i, sh := range ss.shards {
			if t := sh.sim.q.PeekTime(); t < w && t <= end {
				active++
				last = i
			}
		}
		switch {
		case active == 1:
			ss.shards[last].sim.runWindow(w, end)
		case groups == 1:
			for _, sh := range ss.shards {
				sh.sim.runWindow(w, end)
			}
		default:
			pool.Do(groups, func(g int) {
				for i := g; i < len(ss.shards); i += groups {
					ss.shards[i].sim.runWindow(w, end)
				}
			})
		}
	}

	// All queues are past end (or empty): settle every clock at end, like
	// Simulator.RunUntil does.
	for _, sh := range ss.shards {
		sh.sim.RunUntil(end)
	}
}

// RunFor advances the set by d from its current global time.
func (ss *ShardSet) RunFor(d simtime.Duration, groups int) {
	ss.RunUntil(ss.Now().Add(d), groups)
}

// Fork deep-copies the whole shard set — every shard's simulator and the
// in-flight mailbox messages — through one shared clone context, so
// cross-shard references held by handlers (e.g. a cluster agent holding
// peers' shard pointers) land on the forked twins. Shard clones are
// memoized before any simulator forks, mirroring the Put-before-fill rule.
func (ss *ShardSet) Fork(ctx *clone.Ctx) (*ShardSet, error) {
	if ss.inRun {
		panic("sim: Fork during RunUntil")
	}
	nss := &ShardSet{lookahead: ss.lookahead, windows: ss.windows}
	ctx.Put(ss, nss)
	nss.shards = make([]*Shard, len(ss.shards))
	for i, sh := range ss.shards {
		nsh := &Shard{
			id:      sh.id,
			set:     nss,
			edgeSeq: append([]uint64(nil), sh.edgeSeq...),
		}
		if len(sh.outbox) > 0 {
			nsh.outbox = append([]remoteMsg(nil), sh.outbox...)
		}
		ctx.Put(sh, nsh)
		nss.shards[i] = nsh
	}
	for i, sh := range ss.shards {
		nsim, err := sh.sim.Fork(ctx)
		if err != nil {
			return nil, fmt.Errorf("sim: forking shard %d: %w", i, err)
		}
		nss.shards[i].sim = nsim
	}
	return nss, nil
}

package experiments

import (
	"fmt"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/task"
)

// must panics on setup errors: experiment configurations are static and a
// failure means the scenario itself is wrong, not the system under test.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: setup failed: %v", err))
	}
}

func mustGuest(g *guest.OS, err error) *guest.OS {
	must(err)
	return g
}

// guestOf finds the guest a task is registered with.
func guestOf(sys *core.System, t *task.Task) *guest.OS {
	for _, g := range sys.Guests() {
		for _, x := range g.Tasks() {
			if x == t {
				return g
			}
		}
	}
	panic("experiments: task not registered with any guest")
}

package experiments

import (
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// accountingIdentity checks the kernel invariant busy+overhead+idle =
// capacity×elapsed on every PCPU.
func accountingIdentity(t *testing.T, seed uint64, sys *core.System, elapsed simtime.Duration) bool {
	t.Helper()
	sys.Host.Sync()
	var accounted simtime.Duration
	for _, p := range sys.Host.PCPUs() {
		accounted += p.BusyTime + p.OverheadTime + p.IdleTime
	}
	want := simtime.Duration(int64(elapsed) * int64(sys.Host.NumPCPUs()))
	if accounted != want {
		t.Logf("seed %d: accounted %v of %v", seed, accounted, want)
		return false
	}
	return true
}

// Property: the RT-Xen baseline survives VM churn — server VMs appearing
// and disappearing at random instants never corrupt the kernel, and a
// steady VM with an adequate server keeps its deadlines throughout.
func TestQuickRTXenChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := core.DefaultConfig(core.RTXen)
		cfg.PCPUs = 2 + rng.Intn(3)
		cfg.Seed = seed
		sys := core.NewSystem(cfg)

		// The protected VM: a half-CPU server for a 0.2-CPU task.
		gSteady, err := sys.NewServerGuest("steady",
			[]hv.Reservation{{Budget: simtime.Millis(5), Period: simtime.Millis(10)}}, 256)
		if err != nil {
			t.Logf("seed %d: steady guest: %v", seed, err)
			return false
		}
		steady := task.New(0, "steady", task.Periodic, pp(2, 10))
		must(gSteady.RegisterOn(steady, 0))
		sys.Start()
		gSteady.StartPeriodic(steady, 0)

		type liveVM struct {
			g  *guest.OS
			tk *task.Task
		}
		var live []liveVM
		id := 100
		events := 20 + rng.Intn(40)
		for e := 0; e < events; e++ {
			at := simtime.Time(rng.Int63n(int64(simtime.Seconds(5))))
			wantCreate := rng.Intn(2) == 0
			period := simtime.Millis(5 + rng.Int63n(25))
			bw := 0.1 + rng.Float64()*0.4
			budget := simtime.Duration(bw * float64(period))
			myID := id
			id++
			sys.Sim.At(at, func(now simtime.Time) {
				if wantCreate || len(live) == 0 {
					g, err := sys.NewServerGuest(fmt.Sprintf("churn%d", myID),
						[]hv.Reservation{{Budget: budget, Period: period}}, 256)
					if err != nil {
						return // admission rejection is fine
					}
					// Task at ~80% of the server's bandwidth.
					tk := task.New(myID, fmt.Sprintf("t%d", myID), task.Periodic,
						task.Params{Slice: budget * 4 / 5, Period: period})
					if err := g.RegisterOn(tk, 0); err != nil {
						_ = g.Shutdown()
						return
					}
					g.StartPeriodic(tk, now)
					live = append(live, liveVM{g, tk})
				} else {
					i := rng.Intn(len(live))
					vm := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := vm.g.Shutdown(); err != nil {
						panic(err)
					}
				}
			})
		}
		sys.Run(6 * simtime.Second)

		if r := steady.Stats().MissRatio(); r > 0.01 {
			t.Logf("seed %d: steady task missed %.4f through churn", seed, r)
			return false
		}
		// Shut-down VMs must be fully gone from the host.
		want := 1 + len(live)
		if got := len(sys.Host.VMs()); got != want {
			t.Logf("seed %d: %d VMs on host, want %d", seed, got, want)
			return false
		}
		return accountingIdentity(t, seed, sys, 6*simtime.Second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Credit baseline survives weighted-VM churn — hogs coming
// and going never break the kernel accounting, capacity is never
// oversubscribed, and the scheduler keeps every PCPU busy while hogs
// exist (work conservation).
func TestQuickCreditChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := core.DefaultConfig(core.Credit)
		cfg.PCPUs = 2 + rng.Intn(2)
		cfg.Seed = seed
		sys := core.NewSystem(cfg)

		// Two permanent hogs guarantee there is always runnable work.
		gBase, err := sys.NewWeightedGuest("base", cfg.PCPUs, 256)
		if err != nil {
			return false
		}
		var baseHogs []*workload.CPUHog
		for i := 0; i < cfg.PCPUs; i++ {
			h, err := workload.NewCPUHog(gBase, i, fmt.Sprintf("base%d", i))
			if err != nil {
				return false
			}
			baseHogs = append(baseHogs, h)
		}
		sys.Start()
		for _, h := range baseHogs {
			h.Start(0)
		}

		var live []*guest.OS
		id := 100
		events := 15 + rng.Intn(30)
		for e := 0; e < events; e++ {
			at := simtime.Time(rng.Int63n(int64(simtime.Seconds(3))))
			wantCreate := rng.Intn(2) == 0
			myID := id
			id++
			weight := 64 << rng.Intn(4) // 64..512
			sys.Sim.At(at, func(now simtime.Time) {
				if wantCreate || len(live) == 0 {
					g, err := sys.NewWeightedGuest(fmt.Sprintf("churn%d", myID), 1, weight)
					if err != nil {
						return
					}
					h, err := workload.NewCPUHog(g, myID, "hog")
					if err != nil {
						return
					}
					h.Start(now)
					live = append(live, g)
				} else {
					i := rng.Intn(len(live))
					g := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := g.Shutdown(); err != nil {
						panic(err)
					}
				}
			})
		}
		sys.Run(4 * simtime.Second)
		if !accountingIdentity(t, seed, sys, 4*simtime.Second) {
			return false
		}
		// Work conservation: with permanent hogs on every PCPU, idle time
		// is at most the scheduler's own bookkeeping windows.
		sys.Host.Sync()
		var idle, overhead simtime.Duration
		for _, p := range sys.Host.PCPUs() {
			idle += p.IdleTime
			overhead += p.OverheadTime
		}
		if idle > simtime.Millis(50) {
			t.Logf("seed %d: %v idle despite permanent hogs (overhead %v)", seed, idle, overhead)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

package dpwrap

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func pp(s, p int64) task.Params {
	return task.Params{Slice: ms(s), Period: ms(p)}
}

// rig creates a host running DP-WRAP with zero platform costs (timing
// assertions become exact) unless costs is non-nil.
func rig(t *testing.T, pcpus int, costs *hv.CostModel) (*sim.Simulator, *hv.Host, *Scheduler) {
	t.Helper()
	s := sim.New(3)
	c := hv.CostModel{}
	if costs != nil {
		c = *costs
	}
	sched := New(DefaultConfig())
	h := hv.NewHost(s, pcpus, sched, c)
	return s, h, sched
}

func newGuest(t *testing.T, h *hv.Host, name string, vcpus int, slack simtime.Duration) *guest.OS {
	t.Helper()
	cfg := guest.DefaultConfig()
	cfg.Slack = slack
	g, err := guest.NewOS(h, name, cfg, vcpus)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSingleRTANoMisses(t *testing.T) {
	s, h, _ := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 1, simtime.Micros(500))
	tk := task.New(0, "rta", task.Periodic, pp(5, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(10))
	st := tk.Stats()
	if st.Missed != 0 {
		t.Fatalf("missed %d of %d deadlines", st.Missed, st.Released)
	}
	if st.Completed < 990 {
		t.Fatalf("completed only %d jobs", st.Completed)
	}
}

func TestFigure1ScenarioAllDeadlinesMet(t *testing.T) {
	// The motivating example (§2): VM1 hosts RTA1 (1,15) and RTA2 (4,15)
	// released out of phase, contending with VM2 and VM3. Plain two-level
	// EDF misses every other RTA2 deadline; RTVirt must meet all of them.
	// VM2 runs (4.5,10) rather than the paper's (5,10) to leave room for
	// the budget slack that the real system also requires (§4.1) — at
	// exactly 100% utilization with zero slack, nanosecond allocation
	// residue is unavoidable in any implementation.
	s, h, _ := rig(t, 1, nil)
	slack := simtime.Micros(100)
	g1 := newGuest(t, h, "vm1", 1, slack)
	g2 := newGuest(t, h, "vm2", 1, slack)
	g3 := newGuest(t, h, "vm3", 1, slack)
	rta1 := task.New(0, "rta1", task.Periodic, pp(1, 15))
	rta2 := task.New(1, "rta2", task.Periodic, pp(4, 15))
	rta3 := task.New(2, "vm2-rta", task.Periodic, task.Params{Slice: simtime.Micros(4500), Period: ms(10)})
	rta4 := task.New(3, "vm3-rta", task.Periodic, pp(5, 30))
	for _, reg := range []struct {
		g *guest.OS
		t *task.Task
	}{{g1, rta1}, {g1, rta2}, {g2, rta3}, {g3, rta4}} {
		if err := reg.g.Register(reg.t); err != nil {
			t.Fatal(err)
		}
	}
	h.Start()
	g1.StartPeriodic(rta1, 0)
	// Out of phase, as in Fig. 1b; phase 2 is the alignment under which the
	// uncoordinated two-level EDF baseline misses every RTA2 deadline (see
	// the rtxen package's Figure-1 test).
	g1.StartPeriodic(rta2, simtime.Time(ms(2)))
	g2.StartPeriodic(rta3, 0)
	g3.StartPeriodic(rta4, 0)
	s.RunFor(simtime.Seconds(30))
	for _, tk := range []*task.Task{rta1, rta2, rta3, rta4} {
		if st := tk.Stats(); st.Missed != 0 {
			t.Errorf("%s missed %d/%d deadlines", tk.Name, st.Missed, st.Released)
		}
	}
}

func TestHighUtilizationMultiprocessor(t *testing.T) {
	// DP-WRAP optimality: 3 VMs with total task bandwidth 1.9 of 2 PCPUs
	// (plus a small slack, as the real system runs) — all deadlines met.
	s, h, _ := rig(t, 2, nil)
	params := []task.Params{pp(5, 10), pp(12, 20), pp(24, 30)} // 0.5+0.6+0.8 = 1.9
	var tasks []*task.Task
	var guests []*guest.OS
	for i, p := range params {
		g := newGuest(t, h, fmt.Sprintf("vm%d", i), 1, simtime.Micros(100))
		tk := task.New(i, fmt.Sprintf("rta%d", i), task.Periodic, p)
		if err := g.Register(tk); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, tk)
		guests = append(guests, g)
	}
	h.Start()
	for i, tk := range tasks {
		guests[i].StartPeriodic(tk, 0)
	}
	s.RunFor(simtime.Seconds(20))
	for _, tk := range tasks {
		if st := tk.Stats(); st.Missed != 0 {
			t.Errorf("%s missed %d/%d", tk.Name, st.Missed, st.Released)
		}
	}
}

func TestAdmissionRejectsOverCapacity(t *testing.T) {
	_, h, _ := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 2, 0)
	a := task.New(0, "a", task.Periodic, pp(7, 10))
	b := task.New(1, "b", task.Periodic, pp(6, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	err := g.Register(b) // 1.3 CPUs on a 1-CPU host
	if err == nil {
		t.Fatal("over-capacity registration was admitted")
	}
	if !errors.Is(err, guest.ErrHostRejected) && !errors.Is(err, guest.ErrNoCapacity) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMigrationBound(t *testing.T) {
	// DP-WRAP migrates at most m−1 VCPUs per global slice.
	s, h, sched := rig(t, 3, nil)
	var tasks []*task.Task
	var guests []*guest.OS
	// 2.7 CPUs of single-RTA VMs.
	for i := 0; i < 9; i++ {
		g := newGuest(t, h, fmt.Sprintf("vm%d", i), 1, 0)
		tk := task.New(i, fmt.Sprintf("r%d", i), task.Periodic, pp(3, 10))
		if err := g.Register(tk); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, tk)
		guests = append(guests, g)
	}
	h.Start()
	for i, tk := range tasks {
		guests[i].StartPeriodic(tk, 0)
	}
	s.RunFor(simtime.Seconds(5))
	// Within a slice at most m−1 VCPUs are split; a split VCPU also moves
	// back at the next slice boundary, so the meter sees ≤ 2(m−1) PCPU
	// changes per slice.
	maxMig := 2 * (uint64(h.NumPCPUs()) - 1) * sched.Boundaries
	if h.Overhead.Migrations > maxMig {
		t.Fatalf("migrations = %d exceeds 2(m-1)×slices = %d", h.Overhead.Migrations, maxMig)
	}
	for _, tk := range tasks {
		if st := tk.Stats(); st.Missed != 0 {
			t.Errorf("%s missed %d/%d", tk.Name, st.Missed, st.Released)
		}
	}
}

func TestSporadicMeetsDeadline(t *testing.T) {
	s, h, _ := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 1, simtime.Micros(500))
	sp := task.New(0, "sp", task.Sporadic, pp(5, 50))
	if err := g.Register(sp); err != nil {
		t.Fatal(err)
	}
	// Contending periodic VM taking most of the CPU.
	g2 := newGuest(t, h, "vm1", 1, simtime.Micros(500))
	per := task.New(1, "per", task.Periodic, pp(40, 50))
	if err := g2.Register(per); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g2.StartPeriodic(per, 0)
	// Fire sporadic requests at awkward instants.
	for _, at := range []int64{13, 113, 217, 331, 449, 500, 617} {
		at := at
		s.At(simtime.Time(ms(at)), func(now simtime.Time) { g.ReleaseJob(sp, 0) })
	}
	s.RunFor(simtime.Seconds(1))
	if st := sp.Stats(); st.Missed != 0 || st.Completed != 7 {
		t.Fatalf("sporadic: %+v", st)
	}
	if st := per.Stats(); st.Missed != 0 {
		t.Fatalf("periodic missed %d", st.Missed)
	}
}

func TestBackgroundVMGetsLeftover(t *testing.T) {
	s, h, _ := rig(t, 1, nil)
	g := newGuest(t, h, "rt", 1, 0)
	tk := task.New(0, "rta", task.Periodic, pp(5, 10)) // 50%
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	// Background VM with one CPU-hog.
	gbg := newGuest(t, h, "bg", 1, 0)
	hog := task.NewBackground(1, "hog")
	if err := gbg.Register(hog); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.After(0, func(now simtime.Time) {
		gbg.ReleaseJob(hog, simtime.Seconds(100)) // effectively infinite
	})
	s.RunFor(simtime.Seconds(10))
	h.Sync()
	if st := tk.Stats(); st.Missed != 0 {
		t.Fatalf("RT missed %d deadlines with background load", st.Missed)
	}
	bgRun := gbg.VM().TotalRun()
	// The hog should get roughly the leftover 50% of the CPU.
	if bgRun < simtime.Seconds(4) || bgRun > simtime.Seconds(6) {
		t.Fatalf("background got %v of 10s, want ≈5s", bgRun)
	}
}

func TestDynamicBandwidthChange(t *testing.T) {
	s, h, _ := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 1, 0)
	tk := task.New(0, "rta", task.Periodic, pp(2, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.After(simtime.Seconds(2), func(now simtime.Time) {
		if err := g.SetAttr(tk, pp(8, 10)); err != nil {
			t.Errorf("SetAttr: %v", err)
		}
	})
	s.RunFor(simtime.Seconds(5))
	if st := tk.Stats(); st.Missed > 1 {
		// One miss is tolerated at the transition instant (the job in
		// flight was released under the old parameters).
		t.Fatalf("missed %d deadlines across bandwidth change", st.Missed)
	}
	if got := g.AllocatedBandwidth(); got != 0.8 {
		t.Fatalf("allocated bandwidth = %g, want 0.8", got)
	}
}

func TestUnregisterFreesHostBandwidth(t *testing.T) {
	s, h, _ := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 1, 0)
	a := task.New(0, "a", task.Periodic, pp(9, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(a, 0)
	s.RunFor(simtime.Seconds(1))
	if err := g.Unregister(a); err != nil {
		t.Fatal(err)
	}
	// Now a second VM with 0.9 must be admissible.
	g2 := newGuest(t, h, "vm1", 1, 0)
	b := task.New(1, "b", task.Periodic, pp(9, 10))
	if err := g2.Register(b); err != nil {
		t.Fatalf("register after unregister: %v", err)
	}
	g2.StartPeriodic(b, s.Now())
	s.RunFor(simtime.Seconds(2))
	if st := b.Stats(); st.Missed != 0 {
		t.Fatalf("b missed %d", st.Missed)
	}
}

func TestMinSliceClamped(t *testing.T) {
	s, h, sched := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 1, simtime.Micros(500))
	// Period 500µs — only 2× the min slice.
	tk := task.New(0, "fast", task.Periodic, task.Params{Slice: simtime.Micros(100), Period: simtime.Micros(500)})
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(1))
	if sched.Boundaries == 0 {
		t.Fatal("no boundaries recorded")
	}
	if avg := sched.SlicesTotal / simtime.Duration(sched.Boundaries); avg < simtime.Micros(250) {
		t.Fatalf("average slice %v below the 250µs minimum", avg)
	}
	if st := tk.Stats(); float64(st.Missed)/float64(st.Judged()) > 0.01 {
		t.Fatalf("fast task missed %d/%d", st.Missed, st.Judged())
	}
}

func TestIncDecBWRollback(t *testing.T) {
	_, h, sched := rig(t, 1, nil)
	g := newGuest(t, h, "vm0", 2, 0)
	a := task.New(0, "a", task.Periodic, pp(5, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	h.Start()
	v0, v1 := g.VM().VCPUs[0], g.VM().VCPUs[1]
	// Hand-issue an INC_DEC_BW that must fail: dec v0 a bit, inc v1 beyond
	// capacity. The dec must be rolled back.
	before := v0.Res
	err := sched.HandleHypercall(hv.Hypercall{
		Flag:   hv.IncDecBW,
		VCPU:   v1,
		Res:    hv.Reservation{Budget: ms(9), Period: ms(10)},
		Dec:    v0,
		DecRes: hv.Reservation{Budget: ms(2), Period: ms(10)},
	}, h.Sim.Now())
	if err == nil {
		t.Fatal("over-capacity INC_DEC_BW accepted")
	}
	if v0.Res != before {
		t.Fatalf("dec not rolled back: %v, want %v", v0.Res, before)
	}
}

// Property: any randomly generated periodic task set with utilization
// ≤ 90% of the host plus a small slack meets the paper's timeliness claim
// under the RTVirt stack: at least 99% of all deadlines met, and any miss
// is tightly bounded. The guests run the paper's full 500µs budget slack
// (§4.1), which absorbs the sub-millisecond split-VCPU blocking residue
// inherent to work-conserving DP-WRAP.
func TestQuickOptimality(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		m := 1 + rng.Intn(3)
		s := sim.New(seed)
		sched := New(DefaultConfig())
		h := hv.NewHost(s, m, sched, hv.CostModel{})
		budget := 0.70 * float64(m)
		var tasks []*task.Task
		var guests []*guest.OS
		id := 0
		for budget > 0.1 && id < 12 {
			period := ms(5 + rng.Int63n(95))
			maxBW := budget
			if maxBW > 0.9 {
				maxBW = 0.9
			}
			bw := 0.05 + rng.Float64()*(maxBW-0.05)
			slice := simtime.Duration(bw * float64(period))
			if slice < simtime.Micros(100) {
				slice = simtime.Micros(100)
			}
			cfg := guest.DefaultConfig()
			cfg.Slack = simtime.Micros(500)
			g, err := guest.NewOS(h, fmt.Sprintf("vm%d", id), cfg, 1)
			if err != nil {
				return false
			}
			tk := task.New(id, fmt.Sprintf("t%d", id), task.Periodic,
				task.Params{Slice: slice, Period: period})
			if err := g.Register(tk); err != nil {
				// Admission rejected the slack-inflated reservation: the
				// host is full, stop adding load.
				break
			}
			budget -= tk.Params().Bandwidth()
			tasks = append(tasks, tk)
			guests = append(guests, g)
			id++
		}
		h.Start()
		for i, tk := range tasks {
			guests[i].StartPeriodic(tk, simtime.Time(rng.Int63n(int64(ms(20)))))
		}
		s.RunFor(simtime.Seconds(5))
		var missed, judged int
		var worstLate simtime.Duration
		for _, tk := range tasks {
			st := tk.Stats()
			missed += st.Missed
			judged += st.Judged()
			if st.MaxLateness > worstLate {
				worstLate = st.MaxLateness
			}
		}
		if judged == 0 {
			return true
		}
		ratio := float64(missed) / float64(judged)
		if ratio > 0.01 || worstLate > simtime.Millis(1) {
			t.Logf("seed %d: miss ratio %.4f (%d/%d), worst lateness %v",
				seed, ratio, missed, judged, worstLate)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

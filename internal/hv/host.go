package hv

import (
	"fmt"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// Host is the virtual machine monitor: it owns the physical CPUs, the VMs,
// and one host scheduler, and drives all dispatching.
type Host struct {
	Sim   *sim.Simulator
	Costs CostModel

	sched HostScheduler
	pcpus []*PCPU
	vms   []*VM
	vcpus []*VCPU

	// byID is the VCPU id-arena: byID[id] is the admitted VCPU with that
	// dense ID, nil after removal (IDs are never reused once admitted). hot
	// is the struct-of-arrays mirror of the dispatch path's per-VCPU state;
	// see VCPUHot. Both are indexed by VCPU.ID and grow monotonically.
	byID []*VCPU
	hot  []VCPUHot

	// Overhead accumulates scheduler overhead (Table 6 measurements).
	Overhead Overhead

	started   bool
	startTime simtime.Time
	nextVCPU  int
	// costRNG is the dedicated platform-cost sampling stream: derived from
	// (simulator seed, handler ID) without consuming a main-stream draw,
	// cloned by ForkHandler. Constant cost terms never touch it, so the
	// default all-constant model leaves it pristine.
	costRNG *sim.RNG
	// handlerID is the host's slot in the simulator's typed-event dispatch
	// table; the per-PCPU kernel timers are payload events addressed to it.
	handlerID int32
	// bus fans telemetry events out to attached sinks. The zero value is
	// disabled and free: Emit on an empty bus does nothing and allocates
	// nothing, so emission sites stay wired in unconditionally.
	bus trace.Bus
}

// NewHost creates a host with m PCPUs driven by sched.
func NewHost(s *sim.Simulator, m int, sched HostScheduler, costs CostModel) *Host {
	if m <= 0 {
		panic("hv: host needs at least one PCPU")
	}
	h := &Host{Sim: s, Costs: costs, sched: sched}
	h.handlerID = s.RegisterHandler(h)
	h.costRNG = s.DerivedRNG(uint64(h.handlerID))
	for i := 0; i < m; i++ {
		h.pcpus = append(h.pcpus, &PCPU{ID: i, host: h})
	}
	sched.Attach(h)
	return h
}

// HandlerID returns the host's typed-event handler ID.
func (h *Host) HandlerID() int32 { return h.handlerID }

// Host event kinds.
const (
	// evPCPUTimer is the one kernel event per PCPU: the host allocation
	// expired or the running job's projected completion arrived. Owner is
	// the PCPU ID.
	evPCPUTimer uint16 = iota
)

// HandleSimEvent implements sim.Handler.
func (h *Host) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evPCPUTimer:
		p := h.pcpus[ev.Owner]
		p.ev = eventRef{}
		h.refresh(p, now)
	default:
		panic(fmt.Sprintf("hv: unknown event kind %d", ev.Kind))
	}
}

// Scheduler returns the attached host scheduler.
func (h *Host) Scheduler() HostScheduler { return h.sched }

// Bus returns the host's telemetry bus, e.g. to Reset it between phases.
func (h *Host) Bus() *trace.Bus { return &h.bus }

// TraceTo attaches telemetry sinks; every scheduling event the kernel,
// the host scheduler, and the guest layer emit is delivered to each sink
// in attachment order.
func (h *Host) TraceTo(sinks ...trace.Sink) { h.bus.Attach(sinks...) }

// Tracing reports whether any telemetry sink is attached. Emission sites
// that must assemble an Event guard on it so the disabled path is free.
func (h *Host) Tracing() bool { return h.bus.Active() }

// Emit delivers a telemetry event to the attached sinks. Schedulers and
// the guest layer use it to report their own decisions (replenish,
// deplete, admission verdicts) onto the host's bus.
func (h *Host) Emit(ev trace.Event) { h.bus.Emit(ev) }

// PCPUs returns the host's physical CPUs.
func (h *Host) PCPUs() []*PCPU { return h.pcpus }

// NumPCPUs reports the number of physical CPUs.
func (h *Host) NumPCPUs() int { return len(h.pcpus) }

// VMs returns the hosted virtual machines.
func (h *Host) VMs() []*VM { return h.vms }

// VCPUs returns every VCPU on the host in creation order.
func (h *Host) VCPUs() []*VCPU { return h.vcpus }

// ByID returns the VCPU with the given dense ID, or nil if it was removed.
// IDs are assigned at admission and never reused, so the arena only grows.
func (h *Host) ByID(id int) *VCPU { return h.byID[id] }

// Hot exposes the struct-of-arrays per-VCPU dispatch state, indexed by
// VCPU.ID. Host schedulers read it on their hot paths (eligibility scans,
// replenish walks) instead of calling Runnable/OnPCPU per VCPU; treat it
// as read-only — only the dispatch path writes it.
func (h *Host) Hot() []VCPUHot { return h.hot }

// NumIDs reports the size of the VCPU id space (high-water mark of
// assigned IDs + 1); Hot and ByID are valid for indices below it.
func (h *Host) NumIDs() int { return len(h.byID) }

// NewVM creates a VM whose scheduling behaviour is defined by guest.
func (h *Host) NewVM(name string, guest GuestDriver) *VM {
	vm := &VM{ID: len(h.vms), Name: name, Guest: guest, host: h}
	h.vms = append(h.vms, vm)
	return vm
}

// Start installs the scheduler's events and dispatches every PCPU. Call it
// after creating the initial VMs and before running the simulator.
func (h *Host) Start() {
	if h.started {
		panic("hv: Host.Start called twice")
	}
	h.started = true
	h.startTime = h.Sim.Now()
	h.sched.Start(h.Sim.Now())
	for _, p := range h.pcpus {
		p.lastAdvance = h.Sim.Now()
		h.dispatch(p, h.Sim.Now())
	}
}

// StartTime reports when Start was called.
func (h *Host) StartTime() simtime.Time { return h.startTime }

// addVCPU registers a new VCPU with the host and its scheduler. The arena
// slot (byID + hot entry) is staked out before admission so the scheduler
// can index by ID while deciding; a rejected VCPU's slot is vacated and its
// ID reused by the next attempt (nextVCPU only advances on success).
func (h *Host) addVCPU(vm *VM, rt bool, res Reservation, weight int) (*VCPU, error) {
	v := &VCPU{
		ID:           h.nextVCPU,
		VM:           vm,
		Index:        len(vm.VCPUs),
		RT:           rt,
		Res:          res,
		Weight:       weight,
		DeadlineSlot: simtime.Never,
		host:         h,
	}
	for len(h.byID) <= v.ID {
		h.byID = append(h.byID, nil)
		h.hot = append(h.hot, VCPUHot{PCPU: -1, LastPCPU: -1})
	}
	h.byID[v.ID] = v
	h.hot[v.ID] = VCPUHot{PCPU: -1, LastPCPU: -1}
	if err := h.sched.AdmitVCPU(v); err != nil {
		h.byID[v.ID] = nil
		if h.bus.Active() {
			h.bus.Emit(trace.Event{At: h.Sim.Now(), Kind: trace.Reject, PCPU: -1,
				VM: vm.Name, VCPU: v.Index, Arg: int64(res.Budget)})
		}
		return nil, err
	}
	if h.bus.Active() {
		h.bus.Emit(trace.Event{At: h.Sim.Now(), Kind: trace.Admit, PCPU: -1,
			VM: vm.Name, VCPU: v.Index, Arg: int64(res.Budget)})
	}
	h.nextVCPU++
	vm.VCPUs = append(vm.VCPUs, v)
	h.vcpus = append(h.vcpus, v)
	return v, nil
}

// SchedRTVirt is the sched_rtvirt() hypercall: the guest requests a change
// to one or two VCPUs' reservations. It charges the hypercall cost and
// forwards to the host scheduler's cross-layer handler.
func (h *Host) SchedRTVirt(hc Hypercall) error {
	now := h.Sim.Now()
	cost := h.Costs.HypercallCost(hc.Flag).Sample(h.costRNG)
	h.Overhead.Hypercalls++
	h.Overhead.HypercallTime += cost
	// One event per call, emitted where the counter increments so trace
	// counts and the Overhead meter always agree.
	if h.bus.Active() {
		var kind trace.Kind
		switch hc.Flag {
		case IncBW:
			kind = trace.HypercallIncBW
		case DecBW:
			kind = trace.HypercallDecBW
		default:
			kind = trace.HypercallIncDecBW
		}
		ev := trace.Event{At: now, Kind: kind, PCPU: -1, Arg: int64(hc.Res.Budget)}
		if hc.VCPU != nil {
			ev.VM = hc.VCPU.VM.Name
			ev.VCPU = hc.VCPU.Index
			if i := h.hot[hc.VCPU.ID].PCPU; i >= 0 {
				ev.PCPU = int(i)
			}
		}
		h.bus.Emit(ev)
	}
	// The hypercall executes in the calling guest's kernel: if that VCPU is
	// on a PCPU right now, the cost eats into its CPU time.
	if hc.VCPU != nil {
		if i := h.hot[hc.VCPU.ID].PCPU; i >= 0 {
			p := h.pcpus[i]
			h.advance(p, now)
			p.chargeOverhead(now, cost)
		}
	}
	cl, ok := h.sched.(CrossLayer)
	if !ok {
		return ErrNoCrossLayer
	}
	return cl.HandleHypercall(hc, now)
}

// WriteDeadlineSlot is the guest side of the shared-memory page: it stores
// VCPU v's next earliest deadline where the host scheduler can read it.
// The real system uses one 8-byte word per VCPU with no synchronization,
// relying on cache coherence (§3.3); here it is a direct field write plus
// a counter so the communication volume can be reported.
func (h *Host) WriteDeadlineSlot(v *VCPU, deadline simtime.Time) {
	v.DeadlineSlot = deadline
	h.Overhead.ShmWrites++
	if w, ok := h.sched.(SlotWatcher); ok {
		w.SlotUpdated(v, h.Sim.Now())
	}
}

// WriteSporadicFloor updates the second shared-memory word: the minimum
// period across the VCPU's sporadic RTAs (0 = none). See VCPU.SporadicFloor.
func (h *Host) WriteSporadicFloor(v *VCPU, floor simtime.Duration) {
	v.SporadicFloor = floor
	h.Overhead.ShmWrites++
	if w, ok := h.sched.(SlotWatcher); ok {
		w.SlotUpdated(v, h.Sim.Now())
	}
}

// ChargeScheduleWork accounts scheduler work performed outside a
// Schedule() callback — e.g. DP-WRAP's global-deadline computation, which
// runs on one PCPU at every global slice boundary (§3.3). The cost is
// added to the schedule-time meter and delays execution on p.
func (h *Host) ChargeScheduleWork(p *PCPU, cost simtime.Duration) {
	if cost <= 0 {
		return
	}
	now := h.Sim.Now()
	h.Overhead.ScheduleTime += cost
	h.advance(p, now)
	p.chargeOverhead(now, cost)
}

// RemoveVM tears a VM down: every VCPU is undispatched, withdrawn from
// the scheduler and dropped from the host's lists. The guest should have
// unregistered its tasks first (abandoning queued jobs); any job still
// on-CPU is charged up to now and then discarded.
func (h *Host) RemoveVM(vm *VM) {
	now := h.Sim.Now()
	var orphaned []*PCPU
	for _, v := range vm.VCPUs {
		if i := h.hot[v.ID].PCPU; i >= 0 {
			p := h.pcpus[i]
			h.Sim.Cancel(p.ev)
			p.ev = eventRef{}
			h.advance(p, now)
			if p.cur == v {
				if j := v.curJob; j != nil {
					j.Abandon(now)
				}
				v.curJob = nil
				h.hot[v.ID].PCPU = -1
				p.cur = nil
				h.emitDispatch(p, nil, now, 0)
				orphaned = append(orphaned, p)
			}
		}
		h.hot[v.ID].Runnable = false
		h.sched.RemoveVCPU(v, now)
		h.byID[v.ID] = nil
		for i, x := range h.vcpus {
			if x == v {
				h.vcpus = append(h.vcpus[:i], h.vcpus[i+1:]...)
				break
			}
		}
	}
	for i, x := range h.vms {
		if x == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			break
		}
	}
	// Re-dispatch PCPUs that lost their occupant (schedulers that replan
	// on removal have already done this; an extra kick is harmless).
	if h.started {
		for _, p := range orphaned {
			if p.cur == nil && !p.ev.Active() {
				h.Kick(p, now)
			}
		}
	}
}

// TotalRunTime sums job execution time across all PCPUs.
func (h *Host) TotalRunTime() simtime.Duration {
	var total simtime.Duration
	for _, p := range h.pcpus {
		total += p.BusyTime
	}
	return total
}

// OverheadPercent reports total scheduler overhead as a percentage of the
// host's total CPU time since Start.
func (h *Host) OverheadPercent() float64 {
	span := h.Sim.Now().Sub(h.startTime)
	return h.Overhead.Percent(span, len(h.pcpus))
}

// Sync brings every PCPU's execution accounting up to the current instant.
// Call before reading BusyTime/TotalRun style counters mid-run.
func (h *Host) Sync() {
	now := h.Sim.Now()
	for _, p := range h.pcpus {
		h.advance(p, now)
		// A job may have completed exactly at now; give the guest a chance
		// to queue the next one.
		if p.cur != nil && p.cur.curJob == nil {
			h.refresh(p, now)
		}
	}
}

func (h *Host) String() string {
	return fmt.Sprintf("host(%s, %d pcpus, %d vms)", h.sched.Name(), len(h.pcpus), len(h.vms))
}

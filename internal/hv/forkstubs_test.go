package hv

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// The kernel-test fakes are never forked and never schedule typed events;
// the stubs below satisfy the widened HostScheduler/GuestDriver interfaces
// and fail loudly if a test ever exercises them.

func (s *fifoSched) HandleSimEvent(simtime.Time, sim.Payload) { panic("fifoSched: no typed events") }
func (s *fifoSched) ForkHandler(*clone.Ctx) sim.Handler       { panic("fifoSched: not forkable") }

func (s *migrSched) HandleSimEvent(simtime.Time, sim.Payload) { panic("migrSched: no typed events") }
func (s *migrSched) ForkHandler(*clone.Ctx) sim.Handler       { panic("migrSched: not forkable") }

func (s *chaosSched) HandleSimEvent(simtime.Time, sim.Payload) { panic("chaosSched: no typed events") }
func (s *chaosSched) ForkHandler(*clone.Ctx) sim.Handler       { panic("chaosSched: not forkable") }

func (g *fifoGuest) ForkDriver(*clone.Ctx) GuestDriver  { panic("fifoGuest: not forkable") }
func (g *chaosGuest) ForkDriver(*clone.Ctx) GuestDriver { panic("chaosGuest: not forkable") }
func (g *prioGuest) ForkDriver(*clone.Ctx) GuestDriver  { panic("prioGuest: not forkable") }

package experiments

import (
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Property: arbitrary register/SetAttr/unregister churn never corrupts the
// system — admission arithmetic stays within capacity, already-running
// tasks keep ≥99% of their deadlines, and the kernel's accounting
// identities hold.
func TestQuickDynamicChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := core.DefaultConfig(core.RTVirt)
		cfg.PCPUs = 2 + rng.Intn(3)
		cfg.Seed = seed
		sys := core.NewSystem(cfg)

		// A protected steady task that must ride out all the churn.
		gSteady := mustGuest(sys.NewGuest("steady", 1))
		steady := task.New(0, "steady", task.Periodic, pp(4, 10))
		must(gSteady.Register(steady))

		nG := 2 + rng.Intn(3)
		var guests []*guest.OS
		for i := 0; i < nG; i++ {
			g := mustGuest(sys.NewGuestOpts(fmt.Sprintf("churn%d", i),
				core.GuestOpts{VCPUs: 1, MaxVCPUs: 3}))
			guests = append(guests, g)
		}
		sys.Start()
		gSteady.StartPeriodic(steady, 0)

		// Random churn events over 5 seconds.
		id := 100
		type livetask struct {
			g  *guest.OS
			tk *task.Task
		}
		var live []livetask
		events := 30 + rng.Intn(60)
		for e := 0; e < events; e++ {
			at := simtime.Time(rng.Int63n(int64(simtime.Seconds(5))))
			action := rng.Intn(3)
			gi := rng.Intn(len(guests))
			period := simtime.Millis(5 + rng.Int63n(45))
			bw := 0.05 + rng.Float64()*0.4
			slice := simtime.Duration(bw * float64(period))
			myID := id
			id++
			sys.Sim.At(at, func(now simtime.Time) {
				switch action {
				case 0: // register + start
					tk := task.New(myID, fmt.Sprintf("t%d", myID), task.Periodic,
						task.Params{Slice: slice, Period: period})
					if err := guests[gi].Register(tk); err == nil {
						guests[gi].StartPeriodic(tk, now)
						live = append(live, livetask{guests[gi], tk})
					}
				case 1: // unregister a random live task
					if len(live) > 0 {
						i := rng.Intn(len(live))
						lt := live[i]
						live = append(live[:i], live[i+1:]...)
						_ = lt.g.Unregister(lt.tk)
					}
				case 2: // SetAttr on a random live task
					if len(live) > 0 {
						lt := live[rng.Intn(len(live))]
						_ = lt.g.SetAttr(lt.tk, task.Params{Slice: slice, Period: period})
					}
				}
			})
		}
		sys.Run(6 * simtime.Second)
		sys.Host.Sync()

		// Steady task: ≥99% of deadlines through the churn.
		if r := steady.Stats().MissRatio(); r > 0.01 {
			t.Logf("seed %d: steady task missed %.4f", seed, r)
			return false
		}
		// Admission never exceeded capacity.
		if bw := sys.AllocatedBandwidth(); bw > float64(cfg.PCPUs)+1e-6 {
			t.Logf("seed %d: allocated %.3f of %d CPUs", seed, bw, cfg.PCPUs)
			return false
		}
		// Kernel identity.
		var accounted simtime.Duration
		for _, p := range sys.Host.PCPUs() {
			accounted += p.BusyTime + p.OverheadTime + p.IdleTime
		}
		want := simtime.Duration(int64(6*simtime.Second) * int64(cfg.PCPUs))
		if accounted != want {
			t.Logf("seed %d: accounted %v of %v", seed, accounted, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

package simtime

import (
	"testing"
	"testing/quick"
)

func TestAddSaturates(t *testing.T) {
	if Never.Add(Second) != Never {
		t.Fatal("Never + d must stay Never")
	}
	if Time(1).Add(Infinite) != Never {
		t.Fatal("t + Infinite must be Never")
	}
	if Time(1<<62).Add(Duration(1<<62)) != Never {
		t.Fatal("overflowing Add must saturate to Never")
	}
	if Time(5).Add(Millis(1)) != Time(5+1e6) {
		t.Fatal("plain Add wrong")
	}
}

func TestSub(t *testing.T) {
	if Time(10).Sub(Time(3)) != 7 {
		t.Fatal("Sub wrong")
	}
	if Time(3).Sub(Time(10)) != -7 {
		t.Fatal("negative Sub wrong")
	}
}

func TestComparisons(t *testing.T) {
	if !Time(1).Before(Time(2)) || Time(2).Before(Time(1)) {
		t.Fatal("Before wrong")
	}
	if !Time(2).After(Time(1)) || Time(1).After(Time(2)) {
		t.Fatal("After wrong")
	}
}

func TestUnitConstructors(t *testing.T) {
	if Micros(3) != 3000 || Millis(3) != 3e6 || Seconds(3) != 3e9 {
		t.Fatal("unit constructors wrong")
	}
}

func TestConversions(t *testing.T) {
	d := Millis(1500)
	if d.Seconds() != 1.5 || d.Millis() != 1500 || d.Micros() != 1.5e6 {
		t.Fatal("duration conversions wrong")
	}
	tm := Time(Seconds(2))
	if tm.Seconds() != 2 || tm.Millis() != 2000 || tm.Micros() != 2e6 {
		t.Fatal("time conversions wrong")
	}
}

func TestString(t *testing.T) {
	cases := map[Duration]string{
		0:           "0s",
		500:         "500ns",
		Micros(250): "250µs",
		Millis(5):   "5ms",
		Seconds(2):  "2s",
		-Millis(5):  "-5ms",
		Infinite:    "inf",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(d), got, want)
		}
	}
	if Never.String() != "never" {
		t.Error("Never.String() wrong")
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(1, 2) != 1 || Min(2, 1) != 1 || Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Fatal("Min/Max wrong")
	}
	if MinDur(1, 2) != 1 || MaxDur(1, 2) != 2 {
		t.Fatal("MinDur/MaxDur wrong")
	}
	if Clamp(5, 1, 3) != 3 || Clamp(0, 1, 3) != 1 || Clamp(2, 1, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}

func TestScaleDuration(t *testing.T) {
	// 10ms × 3/4 = 7.5ms
	if got := ScaleDuration(Millis(10), 3, 4); got != Micros(7500) {
		t.Fatalf("ScaleDuration = %v, want 7.5ms", got)
	}
	// large value that would overflow naive multiplication
	big := Seconds(3600)
	if got := ScaleDuration(big, 999999, 1000000); got <= 0 || got > big {
		t.Fatalf("ScaleDuration big value wrong: %v", got)
	}
}

func TestScaleDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero denominator did not panic")
		}
	}()
	ScaleDuration(Second, 1, 0)
}

// Property: ScaleDuration(d, n, den) is within 1ns of float math for sane inputs.
func TestQuickScaleDuration(t *testing.T) {
	f := func(dRaw int32, nRaw, denRaw uint16) bool {
		d := Duration(int64(dRaw) + (1 << 31)) // positive, < 2^32 ns
		n := int64(nRaw)
		den := int64(denRaw) + 1
		got := ScaleDuration(d, n, den)
		want := float64(d) * float64(n) / float64(den)
		diff := float64(got) - want
		return diff <= 1 && diff >= -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleDurationCeil(t *testing.T) {
	if got := ScaleDurationCeil(10, 1, 3); got != 4 {
		t.Fatalf("ceil(10/3) = %v, want 4", got)
	}
	if got := ScaleDurationCeil(9, 1, 3); got != 3 {
		t.Fatalf("ceil(9/3) = %v, want 3", got)
	}
	if got := ScaleDurationCeil(Millis(10), 3, 4); got != Micros(7500) {
		t.Fatalf("exact ceil = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero denominator did not panic")
		}
	}()
	ScaleDurationCeil(1, 1, 0)
}

// Property: ceil ≥ floor, and they differ by at most 1ns.
func TestQuickScaleCeilVsFloor(t *testing.T) {
	f := func(dRaw uint32, nRaw, denRaw uint16) bool {
		d := Duration(dRaw)
		n := int64(nRaw)
		den := int64(denRaw) + 1
		fl := ScaleDuration(d, n, den)
		ce := ScaleDurationCeil(d, n, den)
		return ce >= fl && ce-fl <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
